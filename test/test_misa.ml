(* Unit and property tests for the MISA instruction set, assembler and
   parser. *)

open Td_misa

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let str_c = Alcotest.string

(* --- Reg --- *)

let test_reg_roundtrip () =
  List.iter
    (fun r ->
      check bool_c "of_string . to_string" true
        (match Reg.of_string (Reg.to_string r) with
        | Some r' -> Reg.equal r r'
        | None -> false);
      check bool_c "of_index . index" true
        (Reg.equal r (Reg.of_index (Reg.index r))))
    Reg.all

let test_reg_general_excludes_esp () =
  check bool_c "ESP not general" false (List.mem Reg.ESP Reg.general);
  check int_c "seven general registers" 7 (List.length Reg.general)

(* --- Width / Cond --- *)

let test_width () =
  check int_c "W8" 1 (Width.bytes Width.W8);
  check int_c "W16" 2 (Width.bytes Width.W16);
  check int_c "W32" 4 (Width.bytes Width.W32);
  check int_c "mask8" 0xff (Width.mask Width.W8);
  check int_c "sign16" 0x8000 (Width.sign_bit Width.W16)

let test_cond_negate_involutive () =
  let all =
    [ Cond.E; Cond.NE; Cond.L; Cond.LE; Cond.G; Cond.GE; Cond.B; Cond.BE;
      Cond.A; Cond.AE; Cond.S; Cond.NS ]
  in
  List.iter
    (fun c ->
      check bool_c "negate involutive" true
        (Cond.equal c (Cond.negate (Cond.negate c))))
    all

(* --- Operand --- *)

let test_stack_relative () =
  check bool_c "esp disp" true
    (Operand.is_stack_relative (Operand.mem ~base:Reg.ESP 8));
  check bool_c "ebp disp" true
    (Operand.is_stack_relative (Operand.mem ~base:Reg.EBP (-4)));
  check bool_c "ebp with index is heap" false
    (Operand.is_stack_relative
       (Operand.mem ~base:Reg.EBP ~index:(Reg.ECX, Operand.S4) 0));
  check bool_c "eax base is heap" false
    (Operand.is_stack_relative (Operand.mem ~base:Reg.EAX 0))

(* --- Insn classification --- *)

let test_references_heap () =
  let heap = Operand.Mem (Operand.mem ~base:Reg.EAX 4) in
  let stack = Operand.Mem (Operand.mem ~base:Reg.ESP 4) in
  check bool_c "mov heap" true
    (Insn.references_heap (Insn.Mov (Width.W32, heap, Operand.Reg Reg.EBX)));
  check bool_c "mov stack" false
    (Insn.references_heap (Insn.Mov (Width.W32, stack, Operand.Reg Reg.EBX)));
  check bool_c "lea does not access" false
    (Insn.references_heap (Insn.Lea (Operand.mem ~base:Reg.EAX 4, Reg.EBX)));
  check bool_c "reg-only alu" false
    (Insn.references_heap
       (Insn.Alu (Insn.Add, Operand.Reg Reg.EAX, Operand.Reg Reg.EBX)))

let test_regs_read_written () =
  let i =
    Insn.Mov
      ( Width.W32,
        Operand.Reg Reg.ECX,
        Operand.Mem (Operand.mem ~base:Reg.EAX ~index:(Reg.EDX, Operand.S4) 0)
      )
  in
  let reads = Insn.regs_read i in
  check bool_c "reads ECX" true (List.mem Reg.ECX reads);
  check bool_c "reads EAX (address)" true (List.mem Reg.EAX reads);
  check bool_c "reads EDX (index)" true (List.mem Reg.EDX reads);
  check bool_c "writes nothing" true (Insn.regs_written i = [])

(* --- assembly & labels --- *)

let simple_src () =
  let b = Builder.create "t" in
  Builder.label b "entry";
  Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
  Builder.jmp b "skip";
  Builder.movl b (Builder.imm 2) (Builder.reg Reg.EAX);
  Builder.label b "skip";
  Builder.ret b;
  Builder.finish b

let test_assemble_labels () =
  let p = Program.assemble ~base:0x1000 (simple_src ()) in
  check int_c "entry addr" 0x1000 (Program.addr_of_label p "entry");
  check int_c "skip addr" (0x1000 + 12) (Program.addr_of_label p "skip");
  check int_c "size" 16 (Program.size_bytes p);
  check bool_c "contains" true (Program.contains p 0x100c);
  check bool_c "not contains" false (Program.contains p 0x1010)

let test_assemble_unresolved () =
  let b = Builder.create "t" in
  Builder.call b "nowhere";
  let src = Builder.finish b in
  Alcotest.check_raises "unresolved" (Program.Unresolved "nowhere") (fun () ->
      ignore (Program.assemble ~base:0 src))

let test_assemble_symbols () =
  let b = Builder.create "t" in
  Builder.movl b (Builder.mem_sym "counter") (Builder.reg Reg.EAX);
  Builder.call b "helper";
  Builder.ret b;
  let src = Builder.finish b in
  let symbols = function
    | "counter" -> Some 0xC1000040
    | "helper" -> Some 0xFE000000
    | _ -> None
  in
  let p = Program.assemble ~symbols ~base:0 src in
  (match p.Program.code.(0) with
  | Insn.Mov (_, Operand.Mem m, _) ->
      check int_c "resolved disp" 0xC1000040 m.Operand.disp;
      check bool_c "sym cleared" true (m.Operand.sym = None)
  | _ -> Alcotest.fail "expected mov");
  match p.Program.code.(1) with
  | Insn.Call (Insn.Abs a) -> check int_c "resolved call" 0xFE000000 a
  | _ -> Alcotest.fail "expected call abs"

let test_duplicate_label () =
  let b = Builder.create "t" in
  Builder.label b "x";
  Builder.nop b;
  Builder.label b "x";
  Builder.ret b;
  let src = Builder.finish b in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "duplicate label x") (fun () ->
      ignore (Program.assemble ~base:0 src))

let test_heap_reference_count () =
  let b = Builder.create "t" in
  Builder.movl b (Builder.mem ~base:Reg.EAX 0) (Builder.reg Reg.EBX);
  Builder.movl b (Builder.mem ~base:Reg.ESP 0) (Builder.reg Reg.ECX);
  Builder.addl b (Builder.imm 1) (Builder.reg Reg.EBX);
  Builder.ret b;
  let src = Builder.finish b in
  check int_c "instruction count" 4 (Program.instruction_count src);
  check int_c "heap refs" 1 (Program.heap_reference_count src)

(* --- parser --- *)

let test_parse_operands () =
  let p = Parser.parse_operand in
  check bool_c "imm" true (Operand.equal (p "$42") (Operand.Imm 42));
  check bool_c "imm hex" true (Operand.equal (p "$0xff") (Operand.Imm 255));
  check bool_c "neg imm" true (Operand.equal (p "$-3") (Operand.Imm (-3)));
  check bool_c "reg" true (Operand.equal (p "%eax") (Operand.Reg Reg.EAX));
  check bool_c "mem base" true
    (Operand.equal (p "8(%ebx)") (Operand.Mem (Operand.mem ~base:Reg.EBX 8)));
  check bool_c "mem full" true
    (Operand.equal
       (p "4(%ebx,%ecx,4)")
       (Operand.Mem (Operand.mem ~base:Reg.EBX ~index:(Reg.ECX, Operand.S4) 4)));
  check bool_c "mem sym" true
    (Operand.equal (p "12+counter(%eax)")
       (Operand.Mem (Operand.mem ~base:Reg.EAX ~sym:"counter" 12)));
  check bool_c "bare sym" true
    (Operand.equal (p "counter") (Operand.Mem (Operand.mem ~sym:"counter" 0)))

let test_parse_program () =
  let text =
    "# a comment\n\
     entry:\n\
    \    movl $5, %eax\n\
    \    cmpl $0, %eax\n\
    \    je done\n\
    \    rep; movsb\n\
    \    call helper\n\
     done:\n\
    \    ret\n"
  in
  let src = Parser.parse ~name:"p" text in
  check int_c "instructions" 6 (Program.instruction_count src);
  check bool_c "labels" true
    (Program.entry_points src = [ "entry"; "done" ])

let test_parse_errors () =
  let bad s =
    match Parser.parse ~name:"t" s with
    | exception Parser.Syntax_error (_, _) -> true
    | _ -> false
  in
  check bool_c "unknown mnemonic" true (bad "    frobnicate %eax\n");
  check bool_c "bad reg" true (bad "    movl %foo, %eax\n");
  check bool_c "rep on non-string" true (bad "    rep; addl $1, %eax\n");
  check bool_c "lea needs mem" true (bad "    leal %eax, %ebx\n")

(* --- print/parse roundtrip property --- *)

let arbitrary_reg =
  QCheck.Gen.oneofl [ Reg.EAX; Reg.EBX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI; Reg.EBP; Reg.ESP ]

let arbitrary_operand : Operand.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [
      (2, map (fun n -> Operand.Imm n) (int_range (-1000) 100000));
      (3, map (fun r -> Operand.Reg r) arbitrary_reg);
      ( 3,
        map3
          (fun base idx disp ->
            Operand.Mem (Operand.mem ?base ?index:idx disp))
          (opt arbitrary_reg)
          (opt (pair arbitrary_reg (oneofl [ Operand.S1; Operand.S2; Operand.S4; Operand.S8 ])))
          (int_range 0 4096) );
    ]

let arbitrary_insn : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg_op = map (fun r -> Operand.Reg r) arbitrary_reg in
  frequency
    [
      ( 4,
        map3
          (fun w src dst -> Insn.Mov (w, src, dst))
          (oneofl [ Width.W8; Width.W16; Width.W32 ])
          arbitrary_operand reg_op );
      ( 4,
        map3
          (fun op src dst -> Insn.Alu (op, src, dst))
          (oneofl
             [ Insn.Add; Insn.Sub; Insn.Adc; Insn.Sbb; Insn.And; Insn.Or;
               Insn.Xor ])
          arbitrary_operand reg_op );
      ( 1,
        map2 (fun o r -> Insn.Xchg (o, r)) arbitrary_operand arbitrary_reg );
      (2, map (fun o -> Insn.Push o) arbitrary_operand);
      (2, map (fun o -> Insn.Pop o) reg_op);
      (1, return Insn.Ret);
      (1, return Insn.Nop);
      (1, return Insn.Pushf);
      (1, return Insn.Popf);
      ( 1,
        map3
          (fun op w rep -> Insn.Str (op, w, rep))
          (oneofl [ Insn.Movs; Insn.Stos; Insn.Lods ])
          (oneofl [ Width.W8; Width.W32 ])
          bool );
      ( 2,
        map2 (fun c n -> Insn.Jcc (c, Insn.Lbl ("l" ^ string_of_int n)))
          (oneofl [ Cond.E; Cond.NE; Cond.L; Cond.A; Cond.BE ])
          (int_range 0 9) );
    ]

let roundtrip_prop =
  QCheck.Test.make ~name:"printer/parser roundtrip" ~count:500
    (QCheck.make arbitrary_insn ~print:(Format.asprintf "%a" Insn.pp))
    (fun insn ->
      let text = Format.asprintf "%a" Insn.pp insn in
      match Parser.parse_line 1 ("    " ^ text) with
      | Some (Program.Ins insn') -> Insn.equal insn insn'
      | _ -> false)

let source_roundtrip_prop =
  QCheck.Test.make ~name:"program print/parse roundtrip" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 30) arbitrary_insn)
       ~print:(fun l ->
         String.concat "\n" (List.map (Format.asprintf "%a" Insn.pp) l)))
    (fun insns ->
      let items = List.map (fun i -> Program.Ins i) insns in
      (* add labels so jcc targets resolve when assembled; for the parse
         roundtrip only the item list matters *)
      let src = Program.source "rt" items in
      let text = Program.to_string_source src in
      let src' = Parser.parse ~name:"rt" text in
      List.for_all2
        (fun a b ->
          match (a, b) with
          | Program.Ins x, Program.Ins y -> Insn.equal x y
          | Program.Label x, Program.Label y -> String.equal x y
          | _ -> false)
        src.Program.items src'.Program.items)

let test_pp_stable () =
  (* a few exact printed forms, pinned to catch format drift *)
  let cases =
    [
      (Insn.Mov (Width.W32, Operand.Imm 5, Operand.Reg Reg.EAX), "movl $5, %eax");
      ( Insn.Alu (Insn.Xor, Operand.Reg Reg.EBX, Operand.Reg Reg.EBX),
        "xorl %ebx, %ebx" );
      (Insn.Str (Insn.Movs, Width.W8, true), "rep; movsb");
      ( Insn.Cmp
          ( Operand.Mem (Operand.mem ~base:Reg.ECX ~sym:"__stlb" 0),
            Operand.Reg Reg.EDX ),
        "cmpl __stlb(%ecx), %edx" );
      (Insn.Jcc (Cond.NE, Insn.Lbl ".L1"), "jne .L1");
    ]
  in
  List.iter
    (fun (insn, expected) ->
      check str_c expected expected (Format.asprintf "%a" Insn.pp insn))
    cases

let suite =
  [
    Alcotest.test_case "reg roundtrip" `Quick test_reg_roundtrip;
    Alcotest.test_case "reg general" `Quick test_reg_general_excludes_esp;
    Alcotest.test_case "width" `Quick test_width;
    Alcotest.test_case "cond negate" `Quick test_cond_negate_involutive;
    Alcotest.test_case "stack relative" `Quick test_stack_relative;
    Alcotest.test_case "references heap" `Quick test_references_heap;
    Alcotest.test_case "regs read/written" `Quick test_regs_read_written;
    Alcotest.test_case "assemble labels" `Quick test_assemble_labels;
    Alcotest.test_case "assemble unresolved" `Quick test_assemble_unresolved;
    Alcotest.test_case "assemble symbols" `Quick test_assemble_symbols;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "heap ref count" `Quick test_heap_reference_count;
    Alcotest.test_case "parse operands" `Quick test_parse_operands;
    Alcotest.test_case "parse program" `Quick test_parse_program;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pp stable" `Quick test_pp_stable;
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest source_roundtrip_prop;
  ]

let () =
  Alcotest.run "twindrivers"
    [
      ("misa", Test_misa.suite);
      ("mem", Test_mem.suite);
      ("cpu", Test_cpu.suite);
      ("svm", Test_svm.suite);
      ("rewriter", Test_rewriter.suite);
      ("binary", Test_binary.suite);
      ("golden", Test_golden.suite);
      ("props", Test_props.suite);
      ("guards", Test_guards.suite);
      ("xen", Test_xen.suite);
      ("kernel", Test_kernel.suite);
      ("nic", Test_nic.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("http", Test_http.suite);
      ("rtl", Test_rtl.suite);
      ("world", Test_world.suite);
      ("netio", Test_netio.suite);
      ("doorbell", Test_doorbell.suite);
      ("multiqueue", Test_multiqueue.suite);
      ("window", Test_window.suite);
      ("netchannel", Test_netchannel.suite);
      ("experiments", Test_experiments.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("adv", Test_adv.suite);
      ("fleet", Test_fleet.suite);
    ]

(* Tests for the multi-queue NIC model and the sharded simulation:
   RSS hash determinism, device-level steering onto per-queue rings
   with per-queue interrupt vectors, per-queue doorbell word
   independence, the rx-delivery and grant-copy-byte quotas, globally
   unique code-registry generation stamps (reload in one shard must
   never invalidate — or alias — another shard's block cache), and the
   QCheck property that sequential and sharded execution produce
   identical merged ledgers. *)

open Td_nic
open Twindrivers

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool
let string_c = Alcotest.string

(* ---- RSS demux ---- *)

let tuple f =
  {
    Rss.src_ip = 0x0a000002;
    dst_ip = 0x0a000001;
    src_port = 1024 + f;
    dst_port = 80;
  }

let test_rss_determinism () =
  let a = Rss.of_seed 0x2A8F and b = Rss.of_seed 0x2A8F in
  for f = 0 to 63 do
    check int_c "same seed, same hash" (Rss.hash a (tuple f))
      (Rss.hash b (tuple f))
  done;
  let c = Rss.of_seed 0x1111 in
  check bool_c "different seed changes the key" true (Rss.key a <> Rss.key c);
  check int_c "single queue always steers to 0" 0
    (Rss.queue_of_hash (Rss.hash a (tuple 7)) ~queues:1)

let test_rss_covers_all_queues () =
  let t = Rss.of_seed 0x2A8F in
  let hit = Array.make 8 0 in
  for f = 0 to 255 do
    let q = Rss.queue_of_hash (Rss.hash t (tuple f)) ~queues:8 in
    check bool_c "queue in range" true (q >= 0 && q < 8);
    hit.(q) <- hit.(q) + 1
  done;
  Array.iteri
    (fun q n ->
      check bool_c (Printf.sprintf "queue %d sees traffic" q) true (n > 0))
    hit

let test_rss_frame_payload_agree () =
  (* the device parses frames (ethernet header first), the Mq demux
     parses bare payloads — both must recover the same 4-tuple *)
  let t = Rss.of_seed 0x2A8F in
  let mac = "\x02\x00\x00\x00\x00\x07" in
  for f = 0 to 31 do
    let payload = Rss.ipv4_udp_payload (tuple f) in
    let frame = mac ^ mac ^ "\x08\x00" ^ payload in
    check int_c "frame and payload steer alike"
      (Rss.queue_of_payload t ~queues:8 payload)
      (Rss.queue_of_frame t ~queues:8 frame)
  done

(* ---- multi-queue e1000: per-queue rings and vectors ---- *)

type mq_rig = {
  space : Td_mem.Addr_space.t;
  dev : E1000_dev.t;
  mmio : int;
  sent : string list ref;
  irqs : int ref;  (* legacy INTx (queue 0) *)
  vectors : int array;  (* MSI-X firings per vector *)
}

let entries = 8

let make_mq_rig ~queues () =
  let phys = Td_mem.Phys_mem.create () in
  let space = Td_mem.Addr_space.create ~name:"dom0" phys in
  Td_mem.Addr_space.heap_init space ~base:Td_mem.Layout.dom0_heap_base
    ~limit:Td_mem.Layout.dom0_heap_limit;
  let sent = ref [] and irqs = ref 0 in
  let dev =
    E1000_dev.create ~ring_entries:entries ~queues ~rss_seed:0x2A8F ~dma:space
      ~mac:"\x02\x00\x00\x00\x00\x07"
      ~tx_frame:(fun f -> sent := f :: !sent)
      ()
  in
  let mmio = E1000_dev.mmio_vaddr 0 in
  E1000_dev.attach dev ~space ~vaddr:mmio;
  E1000_dev.set_irq_handler dev (fun () -> incr irqs);
  let vectors = Array.make Regs.max_queues 0 in
  for v = 1 to queues - 1 do
    E1000_dev.set_msix_handler dev ~vector:v (fun () ->
        vectors.(v) <- vectors.(v) + 1)
  done;
  let w32 off v =
    Td_mem.Addr_space.write space (mmio + off) Td_misa.Width.W32 v
  in
  (* program every queue's rings; queue 0 is the legacy register block *)
  for q = 0 to queues - 1 do
    let tx_ring =
      Td_mem.Addr_space.heap_alloc space (entries * Regs.desc_bytes)
    in
    let rx_ring =
      Td_mem.Addr_space.heap_alloc space (entries * Regs.desc_bytes)
    in
    w32 (Regs.tdbal_q q) tx_ring;
    w32 (Regs.tdlen_q q) (entries * Regs.desc_bytes);
    w32 (Regs.rdbal_q q) rx_ring;
    w32 (Regs.rdlen_q q) (entries * Regs.desc_bytes)
  done;
  w32 Regs.ims (Regs.icr_txdw lor Regs.icr_rxt0);
  { space; dev; mmio; sent; irqs; vectors }

let reg rig off =
  Td_mem.Addr_space.read rig.space (rig.mmio + off) Td_misa.Width.W32

let set_reg rig off v =
  Td_mem.Addr_space.write rig.space (rig.mmio + off) Td_misa.Width.W32 v

let prime_rx rig ~queue n =
  let ring = reg rig (Regs.rdbal_q queue) in
  for i = 0 to n - 1 do
    let b = Td_mem.Addr_space.heap_alloc rig.space 2048 in
    Td_mem.Addr_space.write rig.space
      (ring + (i * Regs.desc_bytes) + Regs.d_buf)
      Td_misa.Width.W32 b;
    Td_mem.Addr_space.write rig.space
      (ring + (i * Regs.desc_bytes) + Regs.d_sta)
      Td_misa.Width.W32 0
  done;
  set_reg rig (Regs.rdt_q queue) n

let test_device_rss_steering () =
  let queues = 4 in
  let rig = make_mq_rig ~queues () in
  for q = 0 to queues - 1 do
    prime_rx rig ~queue:q entries
  done;
  let mac = E1000_dev.mac rig.dev in
  let rss = Rss.of_seed 0x2A8F in
  let expected = Array.make queues 0 in
  for f = 0 to 31 do
    let frame = mac ^ mac ^ "\x08\x00" ^ Rss.ipv4_udp_payload (tuple f) in
    let q = E1000_dev.rx_queue_of rig.dev frame in
    check int_c "device steering matches the reference demux"
      (Rss.queue_of_frame rss ~queues frame)
      q;
    expected.(q) <- expected.(q) + 1;
    E1000_dev.receive_frame rig.dev frame
  done;
  check int_c "all frames delivered" 32 (E1000_dev.rx_count rig.dev);
  check int_c "none dropped" 0 (E1000_dev.dropped rig.dev);
  for q = 0 to queues - 1 do
    check int_c
      (Printf.sprintf "queue %d rx count" q)
      expected.(q)
      (E1000_dev.rxq_count rig.dev q)
  done;
  (* queue 0 raises legacy INTx; queues 1.. raise their own vector *)
  check int_c "legacy irqs = queue-0 frames" expected.(0) !(rig.irqs);
  for q = 1 to queues - 1 do
    check int_c
      (Printf.sprintf "vector %d firings" q)
      expected.(q) rig.vectors.(q)
  done

let test_per_queue_tx_ring () =
  let rig = make_mq_rig ~queues:4 () in
  let buf = Td_mem.Addr_space.heap_alloc rig.space 2048 in
  Td_mem.Addr_space.write_block rig.space buf (Bytes.of_string "q2-frame");
  let ring = reg rig (Regs.tdbal_q 2) in
  let set_desc field v =
    Td_mem.Addr_space.write rig.space (ring + field) Td_misa.Width.W32 v
  in
  set_desc Regs.d_buf buf;
  set_desc Regs.d_len 8;
  set_desc Regs.d_cmd (Regs.cmd_eop lor Regs.cmd_rs);
  set_reg rig (Regs.tdt_q 2) 1;
  check bool_c "frame emitted from queue 2" true (!(rig.sent) = [ "q2-frame" ]);
  check int_c "queue 2 tx count" 1 (E1000_dev.txq_count rig.dev 2);
  check int_c "vector 2 fired" 1 rig.vectors.(2);
  check int_c "no legacy irq" 0 !(rig.irqs);
  check int_c "queue 2 head advanced" 1 (reg rig (Regs.tdh_q 2))

(* ---- per-queue doorbell words and the rx quota (netio level) ---- *)

type netio_rig = {
  hyp : Td_xen.Hypervisor.t;
  dom0 : Td_xen.Domain.t;
  guest : Td_xen.Domain.t;
  km : Td_kernel.Kmem.t;
  netio : Td_kernel.Xen_netio.t;
}

let make_netio_rig ?batch ?queue ?doorbell () =
  let open Td_xen in
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:m.Harness.dom0
  in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest =
    Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace
  in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp guest;
  let km = Td_kernel.Kmem.create m.Harness.dom0 in
  let netio =
    Td_kernel.Xen_netio.create ?batch ?queue ?doorbell ~hyp ~dom0 ~guest
      ~kmem:km
      ~driver_tx:(fun _ -> ())
      ()
  in
  { hyp; dom0; guest; km; netio }

let deliver rig =
  let open Td_kernel in
  let skb = Skb.alloc rig.km (Td_xen.Domain.space rig.dom0) ~size:256 in
  Skb.put skb (Bytes.of_string "frame");
  Xen_netio.deliver_to_guest rig.netio skb

let test_per_queue_doorbell_words () =
  let open Td_kernel in
  let doorbell =
    { Xen_netio.poll_entry_kicks = 1; idle_hysteresis = 8; poll_budget = 8 }
  in
  let rig = make_netio_rig ~queue:1 ~doorbell () in
  let io = rig.netio in
  check int_c "channel carries its queue index" 1 (Xen_netio.queue io);
  Td_xen.Hypervisor.switch_to rig.hyp rig.guest;
  Xen_netio.set_guest_rx io (fun _ -> ());
  Xen_netio.post_rx_buffers io 8;
  (* one kick per direction crosses the entry threshold at the tick *)
  Xen_netio.guest_transmit io (String.make 64 'a');
  deliver rig;
  Xen_netio.on_tick io;
  check bool_c "tx entered polling" true
    (Xen_netio.tx_mode io = Xen_netio.Polling);
  (* polling-mode traffic rings the queue-1 word pair *)
  Xen_netio.guest_transmit io (String.make 64 'b');
  deliver rig;
  let page = Option.get (Xen_netio.doorbell_vaddr io) in
  let gspace = Td_xen.Domain.space rig.guest in
  let word off = Td_mem.Addr_space.read gspace (page + off) Td_misa.Width.W32 in
  (* queue 1 owns bytes 8..15 of the page; queue 0's historical words
     at 0/4 must never move *)
  check bool_c "queue-1 tx word advanced" true (word 8 > 0);
  check bool_c "queue-1 rx word advanced" true (word 12 > 0);
  check int_c "queue-0 tx word untouched" 0 (word 0);
  check int_c "queue-0 rx word untouched" 0 (word 4);
  check bool_c "out-of-range queue rejected" true
    (match make_netio_rig ~queue:600 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rx_quota_throttles_delivery () =
  let open Td_kernel in
  (* frozen quota clock: the bucket holds exactly [burst] tokens and
     never refills, so the outcome is deterministic *)
  Td_xen.Quota.install
    { Td_xen.Quota.unlimited with Td_xen.Quota.rx_per_s = 1.; burst = 2. };
  Fun.protect ~finally:Td_xen.Quota.clear (fun () ->
      let rig = make_netio_rig () in
      let io = rig.netio in
      let got = ref 0 in
      Xen_netio.set_guest_rx io (fun _ -> incr got);
      Xen_netio.post_rx_buffers io 8;
      for _ = 1 to 5 do
        deliver rig
      done;
      check int_c "burst-sized prefix delivered" 2 (Xen_netio.rx_count io);
      check int_c "guest saw the delivered frames" 2 !got;
      check int_c "remainder throttled, not errored" 3
        (Xen_netio.rx_throttled io);
      check int_c "throttle is not the no-buffer drop path" 0
        (Xen_netio.rx_dropped io);
      check int_c "quota recorded the denials" 3 (Td_xen.Quota.throttled ()))

let test_grant_copy_byte_quota () =
  let open Td_xen in
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest =
    Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace
  in
  Hypervisor.add_domain hyp guest;
  let gt = Grant_table.create ~owner:guest in
  let gpage = Td_mem.Addr_space.heap_alloc gspace 4096 in
  let frame =
    Option.get
      (Td_mem.Addr_space.frame_of_vpage gspace
         ~vpage:(Td_mem.Layout.page_of gpage))
  in
  let r = Grant_table.grant gt ~frame in
  Quota.install
    {
      Quota.unlimited with
      Quota.grant_copy_bytes_per_s = 1.;
      grant_copy_burst_bytes = 100.;
    };
  Fun.protect ~finally:Quota.clear (fun () ->
      (* 64 bytes fit the 100-byte bucket; the next 64 do not — the draw
         is all-or-nothing, so the second copy is denied in full *)
      Grant_table.copy_to gt ~hyp r ~offset:0 ~src:(Bytes.make 64 'x');
      check bool_c "second copy denied" true
        (match
           Grant_table.copy_to gt ~hyp r ~offset:0 ~src:(Bytes.make 64 'y')
         with
        | exception Quota.Quota_exceeded { domain; _ } -> domain = "guest"
        | () -> false);
      check bool_c "copy_from drains the same bucket" true
        (match Grant_table.copy_from gt ~hyp r ~offset:0 ~len:64 with
        | exception Quota.Quota_exceeded _ -> true
        | _ -> false);
      (* a draw that fits the remaining 36 tokens still succeeds *)
      check bool_c "small copy still admitted" true
        (Bytes.length (Grant_table.copy_from gt ~hyp r ~offset:0 ~len:16) = 16))

(* ---- per-shard code registries ---- *)

let registry_image v =
  let open Td_misa in
  let b = Builder.create (Printf.sprintf "img%d" v) in
  Builder.label b "entry";
  Builder.movl b (Builder.imm v) (Builder.reg Reg.EAX);
  Builder.ret b;
  Program.assemble ~base:Td_mem.Layout.vm_driver_code_base (Builder.finish b)

let test_registry_stamps_globally_unique () =
  let open Td_cpu in
  let r1 = Code_registry.create () and r2 = Code_registry.create () in
  check bool_c "fresh registries never share a stamp" true
    (Code_registry.generation r1 <> Code_registry.generation r2);
  (* identical operation sequences on both — the pre-fix aliasing case *)
  Code_registry.register r1 (registry_image 1);
  Code_registry.register r2 (registry_image 1);
  check bool_c "stamps distinct after equal op counts" true
    (Code_registry.generation r1 <> Code_registry.generation r2);
  let g2_before = Code_registry.generation r2 in
  Code_registry.replace r1 (registry_image 2);
  check bool_c "reload bumps only its own registry" true
    (Code_registry.generation r2 = g2_before
    && Code_registry.generation r1 <> g2_before)

let test_reload_isolated_across_shards () =
  let open Td_cpu in
  let open Td_misa in
  (* two (registry, interpreter) pairs, as two shards would hold *)
  let make () =
    let m = Harness.make_machine () in
    let p = registry_image 1 in
    Code_registry.register m.Harness.registry p;
    let st = Harness.dom0_cpu m in
    let interp = Harness.interp_of m st in
    (m, interp, Program.addr_of_label p "entry")
  in
  let m1, i1, e1 = make () in
  let _m2, i2, e2 = make () in
  check int_c "shard 1 runs image 1" 1 (Interp.call i1 ~entry:e1 ~args:[]);
  check int_c "shard 2 runs image 1" 1 (Interp.call i2 ~entry:e2 ~args:[]);
  (* both caches are now synced to their registries (the first call's
     sync from the bc_gen=0 sentinel counts as one invalidation) *)
  let inv2 = Interp.invalidations i2 in
  (* reload in shard 1 only *)
  Code_registry.replace m1.Harness.registry (registry_image 2);
  check int_c "shard 1 executes the new image" 2
    (Interp.call i1 ~entry:e1 ~args:[]);
  check int_c "shard 2 still executes its own image" 1
    (Interp.call i2 ~entry:e2 ~args:[]);
  check int_c "shard 2's block cache was not flushed by shard 1's reload"
    inv2 (Interp.invalidations i2)

(* ---- Mq: sequential vs sharded bit-identity ---- *)

let digest_of_ledger led =
  let open Td_xen in
  let b = Buffer.create 128 in
  List.iter
    (fun (c, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s=%d;" (Ledger.category_name c) v))
    (Ledger.snapshot led);
  List.iter
    (fun (d, v) -> Buffer.add_string b (Printf.sprintf "%s=%d;" d v))
    (Ledger.domain_snapshot led);
  List.iter
    (fun (tag, dir) ->
      let p =
        match Ledger.latency_percentile led dir 99. with
        | None -> "-"
        | Some v -> Printf.sprintf "%.0f" v
      in
      Buffer.add_string b
        (Printf.sprintf "%s:%d/%s;" tag (Ledger.latency_count led dir) p))
    [ ("tx", `Tx); ("rx", `Rx) ];
  Buffer.contents b

let mq_run_digest ~shards ports =
  let queues = 3 in
  let tuning = { Config.default_tuning with Config.queues; shards } in
  let mq = Mq.create ~nics:1 ~tuning Config.Xen_domU in
  let payloads =
    List.map
      (fun p ->
        Rss.ipv4_udp_payload ~len:128
          {
            Rss.src_ip = 0x0a000002;
            dst_ip = 0x0a000001;
            src_port = p land 0xFFFF;
            dst_port = 80;
          })
      ports
  in
  let buckets = Array.make queues [] in
  List.iter
    (fun p ->
      let q = Mq.queue_of_payload mq p in
      buckets.(q) <- p :: buckets.(q))
    payloads;
  let buckets = Array.map List.rev buckets in
  ignore
    (Mq.run mq ~job:(fun ~queue w ->
         List.iteri
           (fun i p ->
             ignore (World.transmit w ~nic:0 ~payload:p);
             if i mod 8 = 7 then World.pump w)
           buckets.(queue);
         World.pump w;
         World.tick w;
         World.shutdown w));
  (digest_of_ledger (Mq.merged_ledger mq), Mq.wire_tx_frames mq)

let mq_seq_vs_sharded_prop =
  QCheck.Test.make
    ~name:"sequential and sharded runs merge to identical ledgers" ~count:4
    (QCheck.make
       QCheck.Gen.(list_size (int_range 24 72) (int_range 0 0xFFFF))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun ports ->
      let seq_digest, seq_frames = mq_run_digest ~shards:1 ports in
      let par_digest, par_frames = mq_run_digest ~shards:3 ports in
      seq_frames = List.length ports
      && par_frames = seq_frames
      && String.equal seq_digest par_digest)

(* Regression for the historical refusal: quotas and a fault plan used
   to be process-global singletons, so Mq.create rejected shards > 1
   with either armed. Engines are per-world now — the same armed
   configuration must run on 4 shards and merge to a ledger
   bit-identical to the sequential run. *)
let mq_armed_run_digest ~shards =
  let queues = 4 in
  let tuning =
    {
      Config.default_tuning with
      Config.queues;
      shards;
      quota = Some Td_xen.Quota.default_limits;
      fault_plan = Some (Td_fault.uniform_plan ~seed:11 0.002);
      recovery = Config.Restart_replay;
    }
  in
  let mq = Mq.create ~nics:1 ~tuning Config.Xen_domU in
  let payloads =
    List.init 96 (fun i ->
        Rss.ipv4_udp_payload ~len:128
          {
            Rss.src_ip = 0x0a000002;
            dst_ip = 0x0a000001;
            src_port = 1000 + (i * 37 mod 1999);
            dst_port = 80;
          })
  in
  let buckets = Array.make queues [] in
  List.iter
    (fun p ->
      let q = Mq.queue_of_payload mq p in
      buckets.(q) <- p :: buckets.(q))
    payloads;
  let buckets = Array.map List.rev buckets in
  ignore
    (Mq.run mq ~job:(fun ~queue w ->
         List.iteri
           (fun i p ->
             ignore (World.transmit w ~nic:0 ~payload:p);
             if i mod 8 = 7 then World.pump w)
           buckets.(queue);
         World.pump w;
         World.tick w;
         World.shutdown w));
  (digest_of_ledger (Mq.merged_ledger mq), Mq.wire_tx_frames mq)

let test_mq_shards_with_quota_and_faults () =
  let seq_digest, seq_frames = mq_armed_run_digest ~shards:1 in
  let par_digest, par_frames = mq_armed_run_digest ~shards:4 in
  check bool_c "sequential run made progress" true (seq_frames > 0);
  check int_c "same wire frames" seq_frames par_frames;
  check string_c "bit-identical merged ledgers" seq_digest par_digest

let suite =
  [
    Alcotest.test_case "rss: determinism" `Quick test_rss_determinism;
    Alcotest.test_case "rss: covers all queues" `Quick
      test_rss_covers_all_queues;
    Alcotest.test_case "rss: frame and payload parse agree" `Quick
      test_rss_frame_payload_agree;
    Alcotest.test_case "device: rss steering + per-queue vectors" `Quick
      test_device_rss_steering;
    Alcotest.test_case "device: per-queue tx ring" `Quick
      test_per_queue_tx_ring;
    Alcotest.test_case "netio: per-queue doorbell words" `Quick
      test_per_queue_doorbell_words;
    Alcotest.test_case "netio: rx quota throttles delivery" `Quick
      test_rx_quota_throttles_delivery;
    Alcotest.test_case "xen: grant-copy byte quota" `Quick
      test_grant_copy_byte_quota;
    Alcotest.test_case "registry: stamps globally unique" `Quick
      test_registry_stamps_globally_unique;
    Alcotest.test_case "registry: reload isolated across shards" `Quick
      test_reload_isolated_across_shards;
    QCheck_alcotest.to_alcotest mq_seq_vs_sharded_prop;
    Alcotest.test_case "mq: 4 shards with quotas + fault plan" `Quick
      test_mq_shards_with_quota_and_faults;
  ]

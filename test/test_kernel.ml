(* Tests for the kernel substrate: allocator, sk_buffs, pools, netdev,
   spinlocks, softirq, timers, support registry. *)

open Td_kernel

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let make () =
  let m = Harness.make_machine () in
  let km = Kmem.create m.Harness.dom0 in
  (m, km)

(* --- kmem --- *)

let test_kmem_classes () =
  let _, km = make () in
  let a = Kmem.alloc km 10 in
  let b = Kmem.alloc km 10 in
  check bool_c "distinct" true (a <> b);
  check bool_c "32-byte class spacing possible" true (abs (b - a) >= 32);
  Kmem.free km a 10;
  let c = Kmem.alloc km 10 in
  check int_c "free list reuse" a c

let test_kmem_zeroed () =
  let m, km = make () in
  let a = Kmem.alloc km 64 in
  Td_mem.Addr_space.write m.Harness.dom0 a Td_misa.Width.W32 0xFFFF;
  Kmem.free km a 64;
  let b = Kmem.alloc km 64 in
  check int_c "same block" a b;
  check int_c "zeroed on alloc" 0 (Td_mem.Addr_space.read m.Harness.dom0 b Td_misa.Width.W32)

let test_kmem_large () =
  let _, km = make () in
  let a = Kmem.alloc km 10000 in
  check int_c "page aligned" 0 (Td_mem.Layout.offset_of a);
  check bool_c "live accounting" true (Kmem.allocated_bytes km >= 10000)

(* --- skb --- *)

let test_skb_lifecycle () =
  let m, km = make () in
  let skb = Skb.alloc km m.Harness.dom0 ~size:256 in
  check int_c "len 0" 0 (Skb.len skb);
  check int_c "data at head" (Skb.head skb) (Skb.data skb);
  check int_c "capacity" 256 (Skb.capacity skb);
  Skb.put skb (Bytes.of_string "abcdef");
  check int_c "len" 6 (Skb.len skb);
  check bool_c "contents" true (Bytes.to_string (Skb.contents skb) = "abcdef");
  Skb.pull skb 2;
  check bool_c "pulled" true (Bytes.to_string (Skb.contents skb) = "cdef");
  (* out-of-range lengths are guest-reachable input: typed, counted
     Guest_fault attributed to the buffer's address space, not Failure *)
  let faults0 = Td_xen.Guest_fault.total_for "dom0" in
  check bool_c "overflow rejected" true
    (match Skb.put skb (Bytes.make 300 'x') with
    | exception Td_xen.Guest_fault.Fault { op = "Skb.put"; _ } -> true
    | _ -> false);
  check bool_c "pull underflow rejected" true
    (match Skb.pull skb 100 with
    | exception Td_xen.Guest_fault.Fault { op = "Skb.pull"; _ } -> true
    | _ -> false);
  check int_c "faults attributed to dom0" (faults0 + 2)
    (Td_xen.Guest_fault.total_for "dom0")

let test_skb_refcount () =
  let m, km = make () in
  let live0 = Kmem.allocated_bytes km in
  let skb = Skb.alloc km m.Harness.dom0 ~size:128 in
  Skb.get_ref skb;
  Skb.free km skb;
  check bool_c "still allocated (ref held)" true
    (Kmem.allocated_bytes km > live0);
  Skb.free km skb;
  check int_c "released at zero" live0 (Kmem.allocated_bytes km)

let test_skb_frag_fields () =
  let m, km = make () in
  let skb = Skb.alloc km m.Harness.dom0 ~size:128 in
  check int_c "no frag" 0 (Skb.frag_page skb);
  Skb.set_frag skb ~page:0xC1230000 ~len:1404;
  check int_c "frag page" 0xC1230000 (Skb.frag_page skb);
  check int_c "total len includes frag" (Skb.len skb + 1404) (Skb.total_len skb)

(* --- pool --- *)

let test_pool_refcount_trick () =
  let m, km = make () in
  let pool = Skb_pool.create km m.Harness.dom0 ~entries:2 ~buf_size:256 in
  check int_c "available" 2 (Skb_pool.available pool);
  let a = Option.get (Skb_pool.alloc pool) in
  (* a dom0-style free must NOT return the buffer to the dom0 allocator:
     the pool's base reference keeps it alive *)
  let live = Kmem.allocated_bytes km in
  Skb.free km a;
  check int_c "buffer survives dom0 free" live (Kmem.allocated_bytes km);
  Skb.get_ref a;
  Skb_pool.release pool a;
  check int_c "back in pool" 2 (Skb_pool.available pool)

let test_pool_exhaustion () =
  let m, km = make () in
  let pool = Skb_pool.create km m.Harness.dom0 ~entries:1 ~buf_size:128 in
  let a = Skb_pool.alloc pool in
  check bool_c "first alloc works" true (a <> None);
  check bool_c "second fails" true (Skb_pool.alloc pool = None);
  check int_c "exhaustion counted" 1 (Skb_pool.exhaustions pool);
  Skb_pool.release pool (Option.get a);
  check bool_c "usable again" true (Skb_pool.alloc pool <> None)

let test_pool_release_resets () =
  let m, km = make () in
  let pool = Skb_pool.create km m.Harness.dom0 ~entries:1 ~buf_size:256 in
  let a = Option.get (Skb_pool.alloc pool) in
  Skb.put a (Bytes.of_string "stale data");
  Skb.pull a 3;
  Skb.set_frag a ~page:42 ~len:10;
  Skb_pool.release pool a;
  let b = Option.get (Skb_pool.alloc pool) in
  check int_c "same skb" a.Skb.addr b.Skb.addr;
  check int_c "len reset" 0 (Skb.len b);
  check int_c "data reset" (Skb.head b) (Skb.data b);
  check int_c "frag reset" 0 (Skb.frag_page b)

let test_pool_foreign_rejected () =
  let m, km = make () in
  let pool = Skb_pool.create km m.Harness.dom0 ~entries:1 ~buf_size:128 in
  let foreign = Skb.alloc km m.Harness.dom0 ~size:128 in
  check bool_c "foreign release rejected" true
    (match Skb_pool.release pool foreign with
    | exception Td_xen.Guest_fault.Fault { op = "Skb_pool.release"; _ } -> true
    | _ -> false);
  check bool_c "frag buffer exists for pool skbs" true
    (Skb_pool.iter pool (fun skb -> assert (Skb_pool.frag_buffer pool skb > 0));
     true)

(* --- netdev / spinlock / softirq / timers --- *)

let test_netdev () =
  let m, km = make () in
  let nd = Netdev.alloc km m.Harness.dom0 ~mmio_base:0xC0F00000 ~mac:"\x02\x00\x00\x00\x00\x01" in
  check int_c "mmio" 0xC0F00000 (Netdev.mmio_base nd);
  check bool_c "mac" true (Netdev.mac nd = "\x02\x00\x00\x00\x00\x01");
  check int_c "default mtu" 1500 (Netdev.mtu nd);
  check bool_c "queue running" false (Netdev.queue_stopped nd);
  Netdev.stop_queue nd;
  check bool_c "stopped" true (Netdev.queue_stopped nd);
  Netdev.wake_queue nd;
  check bool_c "woken" false (Netdev.queue_stopped nd);
  Netdev.set_priv nd 0xC1234567;
  check int_c "priv" 0xC1234567 (Netdev.priv nd)

let test_spinlock () =
  let m, _ = make () in
  let addr = Td_mem.Addr_space.heap_alloc m.Harness.dom0 4 in
  Spinlock.init m.Harness.dom0 addr;
  check bool_c "acquire" true (Spinlock.trylock m.Harness.dom0 addr);
  check bool_c "contended" false (Spinlock.trylock m.Harness.dom0 addr);
  Spinlock.unlock m.Harness.dom0 addr;
  check bool_c "reacquire" true (Spinlock.trylock m.Harness.dom0 addr)

let test_softirq_guard () =
  let sq = Softirq.create () in
  let ran = ref 0 in
  Softirq.raise_softirq sq (fun () -> incr ran);
  Softirq.raise_softirq sq (fun () -> incr ran);
  let allowed = ref false in
  check int_c "guard blocks" 0 (Softirq.run sq ~guard:(fun () -> !allowed) ());
  check int_c "still pending" 2 (Softirq.pending sq);
  allowed := true;
  check int_c "guard opens" 2 (Softirq.run sq ~guard:(fun () -> !allowed) ());
  check int_c "ran" 2 !ran

let test_timer_wheel () =
  let tw = Timer_wheel.create () in
  let fired = ref 0 in
  Timer_wheel.add tw ~period:3 ~name:"watchdog" (fun () -> incr fired);
  for _ = 1 to 7 do
    Timer_wheel.tick tw
  done;
  check int_c "fired at 3 and 6" 2 !fired;
  check int_c "count query" 2 (Timer_wheel.fired tw ~name:"watchdog");
  Timer_wheel.cancel tw ~name:"watchdog";
  for _ = 1 to 5 do
    Timer_wheel.tick tw
  done;
  check int_c "cancelled" 2 !fired

(* --- bridge --- *)

let test_bridge_learning () =
  let br = Bridge.create () in
  let got_a = ref [] and got_b = ref [] in
  let pa = { Bridge.port_name = "a"; tx = (fun f -> got_a := f :: !got_a) } in
  let pb = { Bridge.port_name = "b"; tx = (fun f -> got_b := f :: !got_b) } in
  Bridge.add_port br pa;
  Bridge.add_port br pb;
  let mac_a = "\x02\x00\x00\x00\x00\x0A" and mac_b = "\x02\x00\x00\x00\x00\x0B" in
  (* unknown destination floods (but not back to the learned source) *)
  Bridge.learn br ~mac:mac_a pa;
  Bridge.forward br (mac_b ^ mac_a ^ "\x08\x00payload");
  check int_c "flooded to b" 1 (List.length !got_b);
  check int_c "not reflected to a" 0 (List.length !got_a);
  (* now b is learned from nothing; teach it and forward directly *)
  Bridge.learn br ~mac:mac_b pb;
  Bridge.forward br (mac_b ^ mac_a ^ "\x08\x00more");
  check int_c "unicast to b" 2 (List.length !got_b);
  check bool_c "counted" true (Bridge.forwarded br = 1 && Bridge.flooded br = 1)

(* --- support registry --- *)

let test_support_registry_basics () =
  let m, km = make () in
  let sup = Support.create ~space:m.Harness.dom0 ~kmem:km in
  check bool_c "about 97 routines" true (Support.routine_count sup >= 90);
  check int_c "ten fast-path routines" 10 (List.length Support.fast_path_names);
  List.iter
    (fun n -> check bool_c n true (Support.is_fast_path n))
    Support.fast_path_names;
  check bool_c "kmalloc is not fast-path" false (Support.is_fast_path "kmalloc")

let test_support_dom0_call_counting () =
  let m, km = make () in
  let sup = Support.create ~space:m.Harness.dom0 ~kmem:km in
  Support.register_dom0_natives sup m.Harness.natives;
  let st = Harness.dom0_cpu m in
  (* call kmalloc(100) through the native interface *)
  let addr = Option.get (Support.dom0_symtab sup m.Harness.natives "kmalloc") in
  Td_cpu.State.push st 0;
  Td_cpu.State.push st 100;
  Td_cpu.State.push st 0xDEAD (* fake return address *);
  (Option.get (Td_cpu.Native.lookup m.Harness.natives addr)) st;
  check int_c "counted" 1 (Support.dom0_calls sup "kmalloc");
  check bool_c "returned an address" true (Td_cpu.State.get st Td_misa.Reg.EAX > 0);
  check bool_c "tracked as called" true
    (List.mem "kmalloc" (Support.called_routines sup));
  Support.reset_counts sup;
  check int_c "reset" 0 (Support.dom0_calls sup "kmalloc")

let suite =
  [
    Alcotest.test_case "kmem classes" `Quick test_kmem_classes;
    Alcotest.test_case "kmem zeroed" `Quick test_kmem_zeroed;
    Alcotest.test_case "kmem large" `Quick test_kmem_large;
    Alcotest.test_case "skb lifecycle" `Quick test_skb_lifecycle;
    Alcotest.test_case "skb refcount" `Quick test_skb_refcount;
    Alcotest.test_case "skb frag fields" `Quick test_skb_frag_fields;
    Alcotest.test_case "pool refcount trick" `Quick test_pool_refcount_trick;
    Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion;
    Alcotest.test_case "pool release resets" `Quick test_pool_release_resets;
    Alcotest.test_case "pool foreign rejected" `Quick test_pool_foreign_rejected;
    Alcotest.test_case "netdev" `Quick test_netdev;
    Alcotest.test_case "spinlock" `Quick test_spinlock;
    Alcotest.test_case "softirq guard" `Quick test_softirq_guard;
    Alcotest.test_case "timer wheel" `Quick test_timer_wheel;
    Alcotest.test_case "bridge learning" `Quick test_bridge_learning;
    Alcotest.test_case "support registry" `Quick test_support_registry_basics;
    Alcotest.test_case "support call counting" `Quick
      test_support_dom0_call_counting;
  ]

(* Unit tests for the doorbell page and NAPI-style adaptive mode
   switching on the Xen I/O channel: state transitions under a synthetic
   kick trace, poll-budget fairness across channels, cross-mode
   bit-identity with the doorbell off, and teardown conservation. *)

open Td_xen
open Td_kernel

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let mode_c =
  Alcotest.testable
    (fun fmt m ->
      Format.pp_print_string fmt
        (match m with
        | Xen_netio.Interrupt -> "interrupt"
        | Xen_netio.Polling -> "polling"))
    ( = )

type rig = {
  hyp : Hypervisor.t;
  dom0 : Domain.t;
  guest : Domain.t;
  km : Kmem.t;
  netio : Xen_netio.t;
  driver_frames : Skb.t list ref;
}

let make_rig ?batch ?doorbell () =
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:m.Harness.dom0
  in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest =
    Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace
  in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp guest;
  let km = Kmem.create m.Harness.dom0 in
  let driver_frames = ref [] in
  let netio =
    Xen_netio.create ?batch ?doorbell ~hyp ~dom0 ~guest ~kmem:km
      ~driver_tx:(fun skb -> driver_frames := skb :: !driver_frames)
      ()
  in
  { hyp; dom0; guest; km; netio; driver_frames }

let adaptive ?(poll_entry_kicks = 4) ?(idle_hysteresis = 2)
    ?(poll_budget = 8) () =
  { Xen_netio.poll_entry_kicks; idle_hysteresis; poll_budget }

(* idle -> polling -> idle under a synthetic kick trace: a burst of
   per-frame kicks crosses the entry threshold at the tick boundary;
   polling suppresses subsequent kicks; idle hysteresis falls back *)
let test_mode_transitions () =
  let rig =
    make_rig ~doorbell:(adaptive ~poll_entry_kicks:4 ~idle_hysteresis:2 ()) ()
  in
  let io = rig.netio in
  Hypervisor.switch_to rig.hyp rig.guest;
  check mode_c "starts interrupt-driven" Xen_netio.Interrupt
    (Xen_netio.tx_mode io);
  (* window 1: four frames at batch=1 = four kicks, at the threshold *)
  for _ = 1 to 4 do
    Xen_netio.guest_transmit io (String.make 64 'a')
  done;
  check int_c "burst was interrupt-driven" 4 (Xen_netio.flushes io);
  Xen_netio.on_tick io;
  check mode_c "entered polling at the window boundary" Xen_netio.Polling
    (Xen_netio.tx_mode io);
  (* window 2: polling — no kicks, frames sit staged until a poll *)
  for _ = 1 to 3 do
    Xen_netio.guest_transmit io (String.make 64 'b')
  done;
  check int_c "no further notifications" 4 (Xen_netio.flushes io);
  check int_c "frames staged, not flushed" 3 (Xen_netio.staged io);
  check int_c "suppressed kicks counted" 3
    (Xen_netio.suppressed_hypercalls io);
  Xen_netio.service io;
  check int_c "poll drained the staged frames" 7 (Xen_netio.tx_count io);
  check bool_c "doorbell was visited" true (Xen_netio.doorbell_polls io > 0);
  (* the next tick closes the window that carried the burst; only then
     do idle windows start counting toward the hysteresis of two *)
  Xen_netio.on_tick io;
  check mode_c "traffic window closed, still polling" Xen_netio.Polling
    (Xen_netio.tx_mode io);
  Xen_netio.on_tick io;
  check mode_c "first idle window keeps polling" Xen_netio.Polling
    (Xen_netio.tx_mode io);
  Xen_netio.on_tick io;
  check mode_c "fell back after idle hysteresis" Xen_netio.Interrupt
    (Xen_netio.tx_mode io);
  check int_c "two transitions recorded" 2 (Xen_netio.mode_switches io);
  (* traffic is interrupt-driven again *)
  Xen_netio.guest_transmit io (String.make 64 'c');
  check int_c "kick resumed" 5 (Xen_netio.flushes io)

(* the rx direction runs the same state machine, driven by completions *)
let test_rx_mode_transitions () =
  let rig =
    make_rig ~doorbell:(adaptive ~poll_entry_kicks:4 ~idle_hysteresis:2 ()) ()
  in
  let io = rig.netio in
  let got = ref 0 in
  Xen_netio.set_guest_rx io (fun _ -> incr got);
  Xen_netio.post_rx_buffers io 8;
  let deliver () =
    let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:256 in
    Skb.put skb (Bytes.of_string "frame");
    Xen_netio.deliver_to_guest io skb
  in
  for _ = 1 to 4 do
    deliver ()
  done;
  Xen_netio.on_tick io;
  check mode_c "rx entered polling" Xen_netio.Polling (Xen_netio.rx_mode io);
  for _ = 1 to 3 do
    deliver ()
  done;
  check int_c "completions staged, no virq" 3 (Xen_netio.staged io);
  check int_c "suppressed virqs counted" 3 (Xen_netio.suppressed_virqs io);
  Xen_netio.service io;
  check int_c "poll delivered the completions" 7 !got;
  (* one tick closes the traffic window, two idle ticks trip the
     hysteresis *)
  Xen_netio.on_tick io;
  Xen_netio.on_tick io;
  Xen_netio.on_tick io;
  check mode_c "rx fell back after hysteresis" Xen_netio.Interrupt
    (Xen_netio.rx_mode io)

(* poll budget bounds the work one channel gets per visit, so the pump
   round-robins fairly between two busy channels *)
let test_poll_budget_fairness () =
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:m.Harness.dom0
  in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest =
    Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace
  in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp guest;
  let km = Kmem.create m.Harness.dom0 in
  (* always-poll, budget 2: each service visit drains at most two *)
  let db =
    { Xen_netio.poll_entry_kicks = 0; idle_hysteresis = 1; poll_budget = 2 }
  in
  let mk () =
    Xen_netio.create ~doorbell:db ~hyp ~dom0 ~guest ~kmem:km
      ~driver_tx:(fun skb -> Skb.free km skb)
      ()
  in
  let a = mk () and b = mk () in
  Hypervisor.switch_to hyp guest;
  for _ = 1 to 3 do
    Xen_netio.guest_transmit a (String.make 64 'a');
    Xen_netio.guest_transmit b (String.make 64 'b')
  done;
  check int_c "a staged" 3 (Xen_netio.staged a);
  check int_c "b staged" 3 (Xen_netio.staged b);
  (* one pump round: each channel gets exactly one budget's worth *)
  Xen_netio.service a;
  Xen_netio.service b;
  check int_c "a drained a budget" 2 (Xen_netio.tx_count a);
  check int_c "b drained a budget" 2 (Xen_netio.tx_count b);
  (* second round clears the leftovers; neither channel starved *)
  Xen_netio.service a;
  Xen_netio.service b;
  check int_c "a complete" 3 (Xen_netio.tx_count a);
  check int_c "b complete" 3 (Xen_netio.tx_count b);
  check bool_c "a conserved" true (Xen_netio.conserved a);
  check bool_c "b conserved" true (Xen_netio.conserved b)

(* with the doorbell configured but both directions in interrupt mode,
   every cycle charged is identical to the doorbell-off channel *)
let test_cross_mode_bit_identity () =
  let run rig =
    let io = rig.netio in
    let led = Hypervisor.ledger rig.hyp in
    Ledger.reset led;
    Hypervisor.switch_to rig.hyp rig.guest;
    let got = ref 0 in
    Xen_netio.set_guest_rx io (fun _ -> incr got);
    Xen_netio.post_rx_buffers io 8;
    for i = 1 to 10 do
      Xen_netio.guest_transmit io (String.make (100 + i) 'x')
    done;
    for _ = 1 to 5 do
      let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:512 in
      Skb.put skb (Bytes.make 300 'r');
      Xen_netio.deliver_to_guest io skb
    done;
    Xen_netio.on_tick io;
    (Ledger.grand_total led, Xen_netio.tx_count io, !got)
  in
  (* entry threshold far above the offered kick rate: the adaptive
     channel never leaves interrupt mode *)
  let off = run (make_rig ~batch:4 ()) in
  let on_ =
    run
      (make_rig ~batch:4
         ~doorbell:(adaptive ~poll_entry_kicks:1_000_000 ()) ())
  in
  let cyc (c, _, _) = c and txc (_, t, _) = t and rxc (_, _, r) = r in
  check int_c "same frames on the wire" (txc off) (txc on_);
  check int_c "same frames delivered" (rxc off) (rxc on_);
  check int_c "cycle-identical with the doorbell idle" (cyc off) (cyc on_)

(* a partial batch staged at guest quiesce must be delivered by
   teardown, in whatever mode each direction is in *)
let test_teardown_flushes_partial_batches () =
  let rig =
    make_rig ~batch:8
      ~doorbell:(adaptive ~poll_entry_kicks:0 ~poll_budget:2 ())
      ()
  in
  let io = rig.netio in
  let got = ref 0 in
  Xen_netio.set_guest_rx io (fun _ -> incr got);
  Xen_netio.post_rx_buffers io 8;
  Hypervisor.switch_to rig.hyp rig.guest;
  (* stage partial batches both ways: 5 tx (< batch and > poll budget),
     3 rx completions *)
  for _ = 1 to 5 do
    Xen_netio.guest_transmit io (String.make 64 't')
  done;
  for _ = 1 to 3 do
    let skb = Skb.alloc rig.km (Domain.space rig.dom0) ~size:256 in
    Skb.put skb (Bytes.of_string "rx");
    Xen_netio.deliver_to_guest io skb
  done;
  check int_c "partial batches staged" 8 (Xen_netio.staged io);
  Xen_netio.teardown io;
  check int_c "nothing left staged" 0 (Xen_netio.staged io);
  check int_c "all tx reached the driver" 5 (Xen_netio.tx_count io);
  check int_c "all rx reached the guest" 3 !got;
  check bool_c "conservation holds" true (Xen_netio.conserved io);
  check int_c "tx accounted" (Xen_netio.tx_staged_total io)
    (Xen_netio.tx_count io);
  (* idempotent *)
  Xen_netio.teardown io;
  check int_c "still quiescent" 0 (Xen_netio.staged io)

(* the same invariant at World level, through shutdown *)
let test_world_adaptive_and_shutdown () =
  let open Twindrivers in
  let tuning =
    {
      Config.default_tuning with
      Config.doorbell = true;
      poll_entry_kicks = 4;
      idle_hysteresis = 2;
      poll_budget = 8;
    }
  in
  let w = World.create ~nics:1 ~tuning Config.Xen_domU in
  let payload = String.make 200 'p' in
  for _ = 1 to 3 do
    for i = 1 to 16 do
      ignore (World.transmit w ~nic:0 ~payload);
      if i mod 8 = 0 then World.pump w
    done;
    World.pump w;
    World.tick w
  done;
  check mode_c "world channel crossed into polling" Td_kernel.Xen_netio.Polling
    (World.netio_tx_mode w ~nic:0);
  ignore (World.transmit w ~nic:0 ~payload);
  World.shutdown w;
  check int_c "nothing staged after shutdown" 0 (World.staged_frames w);
  check bool_c "frames conserved" true (World.netio_conserved w);
  check int_c "every frame reached the wire" 49 (World.wire_tx_frames w);
  (* one tick closes the last traffic window, two idle ticks bring the
     channel back to interrupts *)
  World.tick w;
  World.tick w;
  World.tick w;
  check mode_c "fell back at world level" Td_kernel.Xen_netio.Interrupt
    (World.netio_tx_mode w ~nic:0)

(* a domU world without NICs has no I/O channel: a typed configuration
   error naming the domain, not a bare Failure *)
let test_config_error_without_nics () =
  let open Twindrivers in
  check bool_c "typed error on create" true
    (match World.create ~nics:0 Config.Xen_domU with
    | exception World.Config_error { domain; reason } ->
        domain = "guest0"
        && String.length reason > 0
        (* the printer is registered, so diagnostics name the domain *)
        && (try
              ignore
                (Printexc.to_string
                   (World.Config_error { domain; reason }));
              true
            with _ -> false)
    | _ -> false)

let suite =
  [
    Alcotest.test_case "tx mode transitions idle->poll->idle" `Quick
      test_mode_transitions;
    Alcotest.test_case "rx mode transitions" `Quick test_rx_mode_transitions;
    Alcotest.test_case "poll-budget fairness across channels" `Quick
      test_poll_budget_fairness;
    Alcotest.test_case "cross-mode bit-identity" `Quick
      test_cross_mode_bit_identity;
    Alcotest.test_case "teardown flushes partial batches" `Quick
      test_teardown_flushes_partial_batches;
    Alcotest.test_case "world adaptive + shutdown conservation" `Quick
      test_world_adaptive_and_shutdown;
    Alcotest.test_case "config error without nics" `Quick
      test_config_error_without_nics;
  ]

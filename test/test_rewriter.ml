(* Tests for liveness analysis, SVM rewriting, and three-way execution
   equivalence: original vs identity VM instance vs hypervisor instance. *)

open Td_misa
open Td_rewriter

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* --- liveness --- *)

let src_of f =
  let b = Builder.create "t" in
  f b;
  Builder.finish b

let test_liveness_basic () =
  (* movl $1, %eax ; movl %eax, %ebx ; ret — ECX/EDX free at insn 0 *)
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.reg Reg.EAX) (Builder.reg Reg.EBX);
        Builder.ret b)
  in
  let live = Liveness.analyse src in
  let free0 = Liveness.free_regs live 0 in
  check bool_c "ecx free" true (List.mem Reg.ECX free0);
  check bool_c "edx free" true (List.mem Reg.EDX free0);
  (* callee-saved regs are live into ret, hence not free anywhere *)
  check bool_c "esi not free (callee-saved)" false (List.mem Reg.ESI free0)

let test_liveness_kill () =
  (* EAX written at 1 without being read at/after 0 -> dead at 0 *)
  let src =
    src_of (fun b ->
        Builder.nop b;
        Builder.movl b (Builder.imm 5) (Builder.reg Reg.EAX);
        Builder.hlt b)
  in
  let live = Liveness.analyse src in
  check bool_c "eax dead at nop" true (List.mem Reg.EAX (Liveness.free_regs live 0));
  (* at hlt, EAX is the result: live into instruction 2 *)
  check bool_c "eax live at hlt" false
    (List.mem Reg.EAX (Liveness.free_regs live 2))

let test_liveness_branch_join () =
  (* ECX live on one branch only: conservative at the split *)
  let src =
    src_of (fun b ->
        Builder.cmpl b (Builder.imm 0) (Builder.reg Reg.EAX);
        Builder.je b "skip";
        Builder.movl b (Builder.reg Reg.ECX) (Builder.reg Reg.EAX);
        Builder.label b "skip";
        Builder.hlt b)
  in
  let live = Liveness.analyse src in
  check bool_c "ecx live at branch" true (List.mem Reg.ECX (Liveness.live_in live 1))

let test_liveness_flags () =
  let src =
    src_of (fun b ->
        Builder.cmpl b (Builder.imm 0) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.ECX);
        Builder.je b "out";
        Builder.label b "out";
        Builder.hlt b)
  in
  let live = Liveness.analyse src in
  check bool_c "flags live across the mov" true (Liveness.flags_live_in live 1);
  check bool_c "flags dead before cmp" false (Liveness.flags_live_in live 0)

let test_liveness_call_cdecl () =
  (* cdecl callee reads no caller registers: caller-saved regs are free
     before the call when nothing later needs them *)
  let src =
    src_of (fun b ->
        Builder.nop b;
        Builder.call b "ext";
        Builder.hlt b)
  in
  let live = Liveness.analyse src in
  let free0 = Liveness.free_regs live 0 in
  check bool_c "ecx free before call" true (List.mem Reg.ECX free0);
  check bool_c "edx free before call" true (List.mem Reg.EDX free0);
  (* a register holding a value needed after the call must survive it *)
  let src2 =
    src_of (fun b ->
        Builder.nop b;
        Builder.call b "ext";
        Builder.movl b (Builder.reg Reg.EBX) (Builder.reg Reg.EAX);
        Builder.hlt b)
  in
  let live2 = Liveness.analyse src2 in
  check bool_c "ebx live across call" true
    (List.mem Reg.EBX (Liveness.live_in live2 0))

(* --- static rewrite properties --- *)

let test_fast_path_is_ten_instructions () =
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.hlt b)
  in
  let rewritten, stats = Rewrite.rewrite_source src in
  check int_c "one heap site" 1 stats.Rewrite.heap_sites;
  (* hit path length: count instructions from start until the final access,
     excluding slow-path block. With all scratch free and flags dead the
     sequence is exactly the paper's 10 instructions (9 + rewritten op). *)
  let items = rewritten.Program.items in
  let rec hit_path acc = function
    | Program.Ins (Insn.Jcc (Cond.NE, _)) :: rest -> hit_path (acc + 1) rest
    | Program.Ins (Insn.Mov (_, Operand.Mem { base = Some _; _ }, _)) :: _ ->
        acc + 1 (* the translated final access *)
    | Program.Ins _ :: rest -> hit_path (acc + 1) rest
    | Program.Label _ :: rest -> hit_path acc rest
    | [] -> acc
  in
  (* drop nothing: first instruction is the lea *)
  check int_c "ten instruction fast path"
    Svm_emit.fast_path_instructions (hit_path 0 items)

let test_stack_refs_not_rewritten () =
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.mem ~base:Reg.ESP 4) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.mem ~base:Reg.EBP (-8)) (Builder.reg Reg.ECX);
        Builder.ret b)
  in
  let _, stats = Rewrite.rewrite_source src in
  check int_c "no heap sites" 0 stats.Rewrite.heap_sites;
  check int_c "output unchanged" stats.Rewrite.input_instructions
    stats.Rewrite.output_instructions

let test_lea_not_rewritten () =
  let src =
    src_of (fun b ->
        Builder.leal b (Operand.mem ~base:Reg.EBX 16) Reg.EAX;
        Builder.ret b)
  in
  let _, stats = Rewrite.rewrite_source src in
  check int_c "lea is address arithmetic, not access" 0 stats.Rewrite.heap_sites

let test_memory_fraction () =
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.nop b;
        Builder.ret b)
  in
  check bool_c "fraction" true
    (abs_float (Rewrite.memory_reference_fraction src -. 0.25) < 1e-9)

let test_reserved_symbol_rejected () =
  let src =
    src_of (fun b ->
        Builder.label b "__stlb";
        Builder.ret b)
  in
  check bool_c "reserved" true
    (match Rewrite.rewrite_source src with
    | exception Rewrite.Rewrite_error _ -> true
    | _ -> false)

let test_spill_everything_stats () =
  let src =
    src_of (fun b ->
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.hlt b)
  in
  let _, normal = Rewrite.rewrite_source src in
  let _, spilled = Rewrite.rewrite_source ~spill_everything:true src in
  check int_c "no spills with liveness" 0 normal.Rewrite.spill_sites;
  check int_c "spills without liveness" 1 spilled.Rewrite.spill_sites;
  check bool_c "spilling emits more code" true
    (spilled.Rewrite.output_instructions > normal.Rewrite.output_instructions)

(* --- end-to-end equivalence --- *)

let zero_init = Bytes.make Twin_harness.buf_bytes '\000'

let check_three_way ?max_steps ?(init = zero_init) ~regs ~entry source =
  let original, vm, hyp =
    Twin_harness.run_all ?max_steps ~source ~init ~regs ~entry ()
  in
  check bool_c "vm identity instance equivalent" true
    (Twin_harness.equivalent original vm);
  check bool_c "hypervisor instance equivalent" true
    (Twin_harness.equivalent original hyp);
  (original, vm, hyp)

let set_ebx st buf = Td_cpu.State.set st Reg.EBX buf

let test_e2e_loads_stores () =
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 11) (Builder.mem ~base:Reg.EBX 0);
        Builder.movl b (Builder.imm 22) (Builder.mem ~base:Reg.EBX 4);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.mem ~base:Reg.EBX 4) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.reg Reg.EAX) (Builder.mem ~base:Reg.EBX 8);
        Builder.ret b)
  in
  let original, _, hyp = check_three_way ~regs:set_ebx ~entry:"entry" source in
  check int_c "sum" 33 original.Twin_harness.eax;
  check int_c "hyp sum" 33 hyp.Twin_harness.eax

let test_e2e_loop_over_array () =
  (* sum 100 int32 slots via indexed addressing *)
  let init = Bytes.make Twin_harness.buf_bytes '\000' in
  for i = 0 to 99 do
    Bytes.set_int32_le init (4 * i) (Int32.of_int (i * 3))
  done;
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.xorl b (Builder.reg Reg.EAX) (Builder.reg Reg.EAX);
        Builder.xorl b (Builder.reg Reg.ECX) (Builder.reg Reg.ECX);
        Builder.label b "loop";
        Builder.addl b
          (Builder.mem ~base:Reg.EBX ~index:(Reg.ECX, Operand.S4) 0)
          (Builder.reg Reg.EAX);
        Builder.incl b (Builder.reg Reg.ECX);
        Builder.cmpl b (Builder.imm 100) (Builder.reg Reg.ECX);
        Builder.jne b "loop";
        Builder.ret b)
  in
  let original, _, _ =
    check_three_way ~init ~regs:set_ebx ~entry:"entry" source
  in
  check int_c "sum" (3 * 99 * 100 / 2) original.Twin_harness.eax

let test_e2e_flags_across_rewritten_mov () =
  (* cmp sets flags; a rewritten mov sits between cmp and jcc *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 7) (Builder.mem ~base:Reg.EBX 0);
        Builder.cmpl b (Builder.imm 7) (Builder.mem ~base:Reg.EBX 0);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.ECX);
        Builder.je b "eq";
        Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
        Builder.ret b;
        Builder.label b "eq";
        Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let original, _, _ = check_three_way ~regs:set_ebx ~entry:"entry" source in
  check int_c "flags survived" 1 original.Twin_harness.eax

let test_e2e_straddling_access () =
  (* write across the buffer's internal page boundary *)
  let off = Td_mem.Layout.page_size - 2 in
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 0x99AA77CC) (Builder.mem ~base:Reg.EBX off);
        Builder.movl b (Builder.mem ~base:Reg.EBX off) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let original, _, hyp = check_three_way ~regs:set_ebx ~entry:"entry" source in
  check int_c "straddle value" 0x99AA77CC original.Twin_harness.eax;
  check int_c "hyp straddle value" 0x99AA77CC hyp.Twin_harness.eax

let test_e2e_rep_movs_cross_page () =
  (* copy 5000 bytes (crosses a page) from buf[0] to buf[5000/aligned] *)
  let init = Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr (i land 0xff)) in
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.reg Reg.EBX) (Builder.reg Reg.ESI);
        Builder.leal b (Operand.mem ~base:Reg.EBX 3000) Reg.EDI;
        Builder.movl b (Builder.imm 5000) (Builder.reg Reg.ECX);
        Builder.rep_movsb b;
        Builder.movl b (Builder.reg Reg.EDI) (Builder.reg Reg.EAX);
        Builder.subl b (Builder.reg Reg.EBX) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let original, _, hyp =
    check_three_way ~init ~regs:set_ebx ~entry:"entry" source
  in
  check int_c "edi advanced" 8000 original.Twin_harness.eax;
  check int_c "hyp edi advanced" 8000 hyp.Twin_harness.eax

let test_e2e_rep_movsl_and_stosl () =
  let init = Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 7) land 0xff)) in
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        (* fill buf[0..1024) with a pattern, then copy words elsewhere *)
        Builder.movl b (Builder.reg Reg.EBX) (Builder.reg Reg.EDI);
        Builder.movl b (Builder.imm 0xABCD0123) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.imm 256) (Builder.reg Reg.ECX);
        Builder.rep_stosl b;
        Builder.movl b (Builder.reg Reg.EBX) (Builder.reg Reg.ESI);
        Builder.leal b (Operand.mem ~base:Reg.EBX 4096) Reg.EDI;
        Builder.movl b (Builder.imm 256) (Builder.reg Reg.ECX);
        Builder.rep_movsl b;
        Builder.movl b (Builder.mem ~base:Reg.EBX 4096) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let original, _, _ =
    check_three_way ~init ~regs:set_ebx ~entry:"entry" source
  in
  check int_c "pattern copied" 0xABCD0123 original.Twin_harness.eax

let test_e2e_indirect_call () =
  (* function pointer stored in driver data (a VM-instance code address, as
     all shared function pointers are); the driver loads it from the heap
     and calls through it. The rewriter must both translate the pointer
     load via SVM and the call target via the stlb_call table. *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.pushl b (Builder.reg Reg.EBX);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EDX);
        Builder.call_ind b (Builder.reg Reg.EDX);
        Builder.popl b (Builder.reg Reg.EBX);
        (* record the callee's result in memory too *)
        Builder.movl b (Builder.reg Reg.EAX) (Builder.mem ~base:Reg.EBX 16);
        Builder.ret b;
        Builder.label b "callee";
        Builder.movl b (Builder.imm 4242) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let post_load m prog ~buf =
    Td_mem.Addr_space.write m.Harness.dom0 buf Width.W32
      (Twin_harness.vm_address_of_label prog "callee")
  in
  let original, vm, hyp =
    Twin_harness.run_all ~post_load ~source ~init:zero_init ~regs:set_ebx
      ~entry:"entry" ()
  in
  check int_c "original" 4242 original.Twin_harness.eax;
  check int_c "vm instance" 4242 vm.Twin_harness.eax;
  check int_c "hyp instance" 4242 hyp.Twin_harness.eax;
  (* buffers can't be compared directly (they contain the incarnation-
     specific pointer), but the recorded result must match *)
  check int_c "stored result (hyp)" 4242
    (Bytes.get_int32_le hyp.Twin_harness.buf 16 |> Int32.to_int)

let test_e2e_safety_wild_pointer () =
  (* driver dereferences the stlb base: must fault in the hypervisor
     instance, not corrupt it; runs fine natively? no — the address is not
     mapped in dom0 either, so only run the hypervisor incarnation *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm Td_mem.Layout.stlb_base) (Builder.reg Reg.ECX);
        Builder.movl b (Builder.imm 0xBAD) (Builder.mem ~base:Reg.ECX 0);
        Builder.ret b)
  in
  let attempt () =
    Twin_harness.run_incarnation ~source ~init:zero_init
      ~regs:(fun _ _ -> ())
      ~entry:"entry" Twin_harness.Hypervisor
  in
  check bool_c "wild write faults" true
    (match attempt () with
    | exception Td_svm.Runtime.Fault _ -> true
    | _ -> false)

let test_e2e_guest_memory_protected () =
  (* an address in guest-kernel range is rejected even if it happens to be
     mapped somewhere *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm Td_mem.Layout.guest_heap_base) (Builder.reg Reg.ECX);
        Builder.movl b (Builder.mem ~base:Reg.ECX 0) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  check bool_c "guest read faults" true
    (match
       Twin_harness.run_incarnation ~source ~init:zero_init
         ~regs:(fun _ _ -> ())
         ~entry:"entry" Twin_harness.Hypervisor
     with
    | exception Td_svm.Runtime.Fault _ -> true
    | _ -> false)

let test_e2e_spill_everything_still_correct () =
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 5) (Builder.mem ~base:Reg.EBX 0);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  (* run hypervisor incarnation against a spill-everything rewrite by
     deriving manually *)
  let twin = Td_rewriter.Twin.derive ~spill_everything:true source in
  check bool_c "rewrite produced spills" true
    (twin.Td_rewriter.Twin.stats.Rewrite.spill_sites > 0);
  let original =
    Twin_harness.run_incarnation ~source ~init:zero_init ~regs:set_ebx
      ~entry:"entry" Twin_harness.Original
  in
  check int_c "original" 10 original.Twin_harness.eax

(* --- property: random straight-line programs are equivalence-preserved --- *)

let gen_straightline : Program.source QCheck.Gen.t =
  let open QCheck.Gen in
  (* registers used for computation; EBX stays the buffer base *)
  let regs = [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ] in
  let reg = oneofl regs in
  let disp = map (fun n -> 4 * n) (int_range 0 200) in
  let mem = map (fun d -> Builder.mem ~base:Reg.EBX d) disp in
  let operand = frequency [ (2, map (fun r -> Builder.reg r) reg); (2, mem);
                            (1, map (fun n -> Builder.imm n) (int_range 0 10000)) ] in
  let alu = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ] in
  let insn =
    frequency
      [
        ( 4,
          map3
            (fun src r _ -> Insn.Mov (Width.W32, src, Builder.reg r))
            operand reg unit );
        ( 3,
          map3 (fun src r _ -> Insn.Mov (Width.W32, Builder.reg r, src))
            mem reg unit );
        ( 4,
          map3 (fun op src r -> Insn.Alu (op, src, Builder.reg r))
            alu operand reg );
        ( 2,
          map3 (fun op r m -> Insn.Alu (op, Builder.reg r, m)) alu reg mem );
        (1, map (fun m -> Insn.Inc m) mem);
        (1, map (fun m -> Insn.Dec m) mem);
        (1, map2 (fun n r -> Insn.Shift (Insn.Shr, Builder.imm (n land 7), Builder.reg r)) (int_range 0 7) reg);
      ]
  in
  let* body = list_size (int_range 1 40) insn in
  let items =
    Program.Label "entry"
    :: List.map (fun i -> Program.Ins i) body
    @ [ Program.Ins Insn.Ret ]
  in
  return (Program.source "rand" items)

let print_src src = Program.to_string_source src

(* richer generator: forward branches and calls to a helper routine, so
   flag preservation, label handling and cdecl liveness at call sites are
   all exercised by the equivalence property *)
let gen_branchy : Program.source QCheck.Gen.t =
  let open QCheck.Gen in
  let regs = [ Reg.EAX; Reg.ECX; Reg.EDX; Reg.ESI; Reg.EDI ] in
  let reg = oneofl regs in
  let mem = map (fun d -> Builder.mem ~base:Reg.EBX (4 * d)) (int_range 0 100) in
  let operand =
    frequency
      [ (2, map (fun r -> Builder.reg r) reg); (2, mem);
        (1, map (fun n -> Builder.imm n) (int_range 0 1000)) ]
  in
  let alu = oneofl [ Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor ] in
  let block tag =
    let* ops = list_size (int_range 1 6)
      (frequency
         [ (3, map2 (fun op src -> fun r -> Insn.Alu (op, src, Builder.reg r)) alu operand);
           (2, map (fun src -> fun r -> Insn.Mov (Width.W32, src, Builder.reg r)) operand);
           (1, map (fun m -> fun _ -> Insn.Inc m) mem);
         ])
    in
    let* rs = list_repeat (List.length ops) reg in
    let body = List.map2 (fun f r -> Program.Ins (f r)) ops rs in
    return (tag, body)
  in
  let* blocks = list_size (int_range 2 5) (block ()) in
  let* conds = list_repeat (List.length blocks) (oneofl [ Cond.E; Cond.NE; Cond.L; Cond.A ]) in
  let* cmp_vals = list_repeat (List.length blocks) (int_range 0 20) in
  (* each block: cmp mem, imm ; jcc over a call to the helper; block body *)
  let items = ref [ Program.Label "entry" ] in
  List.iteri
    (fun i ((), body) ->
      let skip = Printf.sprintf ".Lskip%d" i in
      items :=
        !items
        @ [
            Program.Ins
              (Insn.Cmp
                 (Builder.imm (List.nth cmp_vals i), Builder.mem ~base:Reg.EBX 0));
            Program.Ins (Insn.Jcc (List.nth conds i, Insn.Lbl skip));
            Program.Ins (Insn.Push (Builder.mem ~base:Reg.EBX 4));
            Program.Ins (Insn.Call (Insn.Lbl "helper"));
            Program.Ins (Insn.Alu (Insn.Add, Operand.Imm 4, Builder.reg Reg.ESP));
            Program.Ins
              (Insn.Mov (Width.W32, Builder.reg Reg.EAX, Builder.mem ~base:Reg.EBX (4 * (i + 2))));
            Program.Label skip;
          ]
        @ body)
    blocks;
  (* the helper deliberately clobbers the caller-saved registers, so the
     generated programs live under the same cdecl contract the liveness
     analysis assumes (compiled code never reads ECX/EDX across a call) *)
  items := !items @ [ Program.Ins Insn.Ret;
                      Program.Label "helper";
                      Program.Ins (Insn.Mov (Width.W32, Builder.mem ~base:Reg.ESP 4, Builder.reg Reg.EAX));
                      Program.Ins (Insn.Alu (Insn.Add, Builder.imm 17, Builder.reg Reg.EAX));
                      Program.Ins (Insn.Mov (Width.W32, Builder.imm 0xC10BBE5, Builder.reg Reg.ECX));
                      Program.Ins (Insn.Mov (Width.W32, Builder.imm 0xDEAD10C, Builder.reg Reg.EDX));
                      Program.Ins Insn.Ret ];
  return (Program.source "branchy" !items)

let branchy_equivalence_prop =
  QCheck.Test.make ~name:"branchy programs with calls: three-way equivalence"
    ~count:40
    (QCheck.make gen_branchy ~print:print_src)
    (fun source ->
      let init =
        Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 31) land 0xff))
      in
      let original, vm, hyp =
        Twin_harness.run_all ~source ~init ~regs:set_ebx ~entry:"entry" ()
      in
      Twin_harness.equivalent original vm
      && Twin_harness.equivalent original hyp)

let equivalence_prop =
  QCheck.Test.make ~name:"random programs: three-way equivalence" ~count:60
    (QCheck.make gen_straightline ~print:print_src)
    (fun source ->
      let init =
        Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 13) land 0xff))
      in
      let original, vm, hyp =
        Twin_harness.run_all ~source ~init ~regs:set_ebx ~entry:"entry" ()
      in
      Twin_harness.equivalent original vm
      && Twin_harness.equivalent original hyp)

let cached_equivalence_prop =
  QCheck.Test.make
    ~name:"probe caching preserves three-way equivalence" ~count:50
    (QCheck.make gen_straightline ~print:print_src)
    (fun source ->
      let init =
        Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 11) land 0xff))
      in
      let original, vm, hyp =
        Twin_harness.run_all ~cache_probes:true ~source ~init ~regs:set_ebx
          ~entry:"entry" ()
      in
      Twin_harness.equivalent original vm
      && Twin_harness.equivalent original hyp)

let test_probe_caching_effect () =
  (* consecutive field accesses through one base register: first access
     probes, the rest ride the cached translation *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 1) (Builder.mem ~base:Reg.EBX 0);
        Builder.movl b (Builder.imm 2) (Builder.mem ~base:Reg.EBX 4);
        Builder.movl b (Builder.imm 3) (Builder.mem ~base:Reg.EBX 8);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.mem ~base:Reg.EBX 4) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.mem ~base:Reg.EBX 8) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let plain = Twin.derive source in
  let cached = Twin.derive ~cache_probes:true source in
  check int_c "no reuse without the flag" 0
    plain.Twin.stats.Rewrite.cached_sites;
  check int_c "five of six accesses reuse the probe" 5
    cached.Twin.stats.Rewrite.cached_sites;
  check bool_c "much smaller code" true
    (cached.Twin.stats.Rewrite.output_instructions
    < plain.Twin.stats.Rewrite.output_instructions - 20);
  (* a backward or cross-page displacement must NOT reuse *)
  let backward =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 1) (Builder.mem ~base:Reg.EBX 64);
        Builder.movl b (Builder.mem ~base:Reg.EBX 0) (Builder.reg Reg.EAX);
        Builder.movl b (Builder.mem ~base:Reg.EBX 8192) (Builder.reg Reg.ECX);
        Builder.ret b)
  in
  let tw = Twin.derive ~cache_probes:true backward in
  check int_c "unsafe displacements re-probe" 0
    tw.Twin.stats.Rewrite.cached_sites

let test_probe_caching_invalidation () =
  (* writing the base register kills the cached translation *)
  let source =
    src_of (fun b ->
        Builder.label b "entry";
        Builder.movl b (Builder.imm 1) (Builder.mem ~base:Reg.EBX 0);
        Builder.addl b (Builder.imm 4) (Builder.reg Reg.EBX);
        Builder.movl b (Builder.imm 2) (Builder.mem ~base:Reg.EBX 0);
        Builder.ret b)
  in
  let tw = Twin.derive ~cache_probes:true source in
  check int_c "write to base invalidates" 0 tw.Twin.stats.Rewrite.cached_sites

(* liveness soundness: clobbering every 'free' register before any
   instruction must not change the program's observable behaviour *)
let liveness_soundness_prop =
  QCheck.Test.make ~name:"liveness: free registers are really dead" ~count:40
    (QCheck.make gen_straightline ~print:print_src)
    (fun source ->
      let live = Liveness.analyse source in
      let init =
        Bytes.init Twin_harness.buf_bytes (fun i -> Char.chr ((i * 3) land 0xff))
      in
      let regs st buf = Td_cpu.State.set st Reg.EBX buf in
      let baseline =
        Twin_harness.run_incarnation ~source ~init ~regs ~entry:"entry"
          Twin_harness.Original
      in
      (* build a poisoned variant: before instruction k, every free
         register is overwritten with garbage *)
      let poisoned_items k =
        let idx = ref 0 in
        List.concat_map
          (function
            | Program.Label l -> [ Program.Label l ]
            | Program.Ins insn ->
                let here = !idx in
                incr idx;
                if here = k then
                  List.map
                    (fun r ->
                      Program.Ins
                        (Insn.Mov
                           (Width.W32, Builder.imm 0x0DD0BAD, Builder.reg r)))
                    (Liveness.free_regs live here)
                  @ [ Program.Ins insn ]
                else [ Program.Ins insn ])
          source.Program.items
      in
      let n = Program.instruction_count source in
      List.for_all
        (fun k ->
          let poisoned = Program.source "poisoned" (poisoned_items k) in
          let run =
            Twin_harness.run_incarnation ~source:poisoned ~init ~regs
              ~entry:"entry" Twin_harness.Original
          in
          Twin_harness.equivalent baseline run)
        (List.init (min n 10) (fun i -> i * max 1 (n / 10)))
      )

let suite =
  [
    Alcotest.test_case "liveness basic" `Quick test_liveness_basic;
    Alcotest.test_case "liveness kill" `Quick test_liveness_kill;
    Alcotest.test_case "liveness branch join" `Quick test_liveness_branch_join;
    Alcotest.test_case "liveness flags" `Quick test_liveness_flags;
    Alcotest.test_case "liveness call cdecl" `Quick test_liveness_call_cdecl;
    Alcotest.test_case "fast path is 10 instructions" `Quick
      test_fast_path_is_ten_instructions;
    Alcotest.test_case "stack refs kept" `Quick test_stack_refs_not_rewritten;
    Alcotest.test_case "lea kept" `Quick test_lea_not_rewritten;
    Alcotest.test_case "memory fraction" `Quick test_memory_fraction;
    Alcotest.test_case "reserved symbols rejected" `Quick
      test_reserved_symbol_rejected;
    Alcotest.test_case "spill ablation stats" `Quick test_spill_everything_stats;
    Alcotest.test_case "e2e loads/stores" `Quick test_e2e_loads_stores;
    Alcotest.test_case "e2e loop over array" `Quick test_e2e_loop_over_array;
    Alcotest.test_case "e2e flags across rewritten mov" `Quick
      test_e2e_flags_across_rewritten_mov;
    Alcotest.test_case "e2e straddling access" `Quick test_e2e_straddling_access;
    Alcotest.test_case "e2e rep movs cross page" `Quick
      test_e2e_rep_movs_cross_page;
    Alcotest.test_case "e2e rep movsl/stosl" `Quick test_e2e_rep_movsl_and_stosl;
    Alcotest.test_case "e2e indirect call" `Quick
      test_e2e_indirect_call;
    Alcotest.test_case "e2e wild pointer faults" `Quick
      test_e2e_safety_wild_pointer;
    Alcotest.test_case "e2e guest memory protected" `Quick
      test_e2e_guest_memory_protected;
    Alcotest.test_case "e2e spill-everything correct" `Quick
      test_e2e_spill_everything_still_correct;
    QCheck_alcotest.to_alcotest equivalence_prop;
    QCheck_alcotest.to_alcotest branchy_equivalence_prop;
    QCheck_alcotest.to_alcotest liveness_soundness_prop;
    Alcotest.test_case "probe caching effect" `Quick test_probe_caching_effect;
    Alcotest.test_case "probe caching invalidation" `Quick
      test_probe_caching_invalidation;
    QCheck_alcotest.to_alcotest cached_equivalence_prop;
  ]

(* Tests for the observability layer: metric registry lifecycle,
   histogram percentile edges, trace-ring wraparound, zero-cost-when-
   disabled, and the end-to-end property the paper's fast path promises —
   an error-free transmit run records no upcall events. *)

open Td_obs

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* every test starts from a pristine, enabled registry and restores the
   disabled default afterwards, so unrelated suites never see obs state *)
let with_fresh f () =
  Metrics.clear ();
  Trace.set_capacity 4096;
  Fun.protect
    ~finally:(fun () ->
      Control.disable ();
      Metrics.clear ();
      Trace.clear ())
    (fun () -> Control.with_enabled f)

let test_registry () =
  let c = Metrics.counter ~help:"a counter" "t.count" in
  Metrics.incr c;
  Metrics.add c 4;
  check int_c "counter" 5 (Metrics.value c);
  (* find-or-create returns the same cell *)
  Metrics.incr (Metrics.counter "t.count");
  check int_c "shared cell" 6 (Metrics.counter_value "t.count");
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  check bool_c "gauge" true (Metrics.gauge_value (Metrics.gauge "t.gauge") = 2.5);
  check bool_c "exists" true (Metrics.exists "t.gauge");
  check int_c "absent counter reads 0" 0 (Metrics.counter_value "t.absent");
  check bool_c "absent" false (Metrics.exists "t.absent");
  (* a name keeps its kind *)
  check bool_c "kind mismatch" true
    (match Metrics.gauge "t.count" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check bool_c "names sorted" true
    (Metrics.names () = [ "t.count"; "t.gauge" ])

let test_reset () =
  Metrics.bump "t.a";
  Metrics.bump_by "t.b" 7;
  Metrics.set (Metrics.gauge "t.g") 9.0;
  Metrics.observe (Metrics.histogram "t.h") 100;
  Metrics.reset "t.b";
  check int_c "single reset" 0 (Metrics.counter_value "t.b");
  check int_c "others kept" 1 (Metrics.counter_value "t.a");
  Metrics.reset_all ();
  check int_c "reset_all zeroes" 0 (Metrics.counter_value "t.a");
  check int_c "histogram zeroed" 0 (Metrics.observations (Metrics.histogram "t.h"));
  (* registrations survive a reset — the snapshot still lists them *)
  check bool_c "registration survives" true (Metrics.exists "t.b");
  check bool_c "snapshot lists reset names" true
    (List.mem_assoc "t.a" (Metrics.snapshot ()));
  Metrics.clear ();
  check bool_c "clear drops registrations" false (Metrics.exists "t.a")

let test_percentiles () =
  let h = Metrics.histogram ~bounds:[| 10; 20; 40 |] "t.p" in
  check int_c "empty histogram" 0 (Metrics.percentile h 50.0);
  (* 8 observations in the 0..10 bucket, 1 in 11..20, 1 in the overflow *)
  for _ = 1 to 8 do
    Metrics.observe h 5
  done;
  Metrics.observe h 15;
  Metrics.observe h 1000;
  check int_c "count" 10 (Metrics.observations h);
  check int_c "sum" (40 + 15 + 1000) (Metrics.sum h);
  (* percentile reports the upper bound of the rank's bucket *)
  check int_c "p50 in first bucket" 10 (Metrics.percentile h 50.0);
  check int_c "p80 still first bucket" 10 (Metrics.percentile h 80.0);
  check int_c "p90 second bucket" 20 (Metrics.percentile h 90.0);
  (* the overflow bucket reports the true maximum, not a bound *)
  check int_c "p100 exact max" 1000 (Metrics.percentile h 100.0);
  check int_c "p99 exact max" 1000 (Metrics.percentile h 99.0);
  (* out-of-range p clamps instead of raising *)
  check int_c "p<0 clamps" 10 (Metrics.percentile h (-3.0));
  check int_c "p>100 clamps" 1000 (Metrics.percentile h 250.0);
  check bool_c "bounds must increase" true
    (match Metrics.histogram ~bounds:[| 4; 4 |] "t.bad" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ring_wraparound () =
  Trace.set_capacity 8;
  check int_c "capacity" 8 (Trace.capacity ());
  for i = 0 to 19 do
    Trace.emit (Trace.Custom { name = "t"; value = i })
  done;
  check int_c "all twenty emitted" 20 (Trace.emitted ());
  let records = Trace.records () in
  check int_c "ring keeps last eight" 8 (List.length records);
  (* oldest-first, contiguous, ending at the newest event *)
  List.iteri
    (fun i (r : Trace.record) ->
      check int_c "seq contiguous" (12 + i) r.Trace.seq;
      match r.Trace.event with
      | Trace.Custom { value; _ } -> check int_c "payload matches seq" (12 + i) value
      | _ -> Alcotest.fail "unexpected event")
    records;
  check int_c "count_if sees only retained" 8
    (Trace.count_if (function Trace.Custom _ -> true | _ -> false));
  Trace.clear ();
  check int_c "clear" 0 (Trace.emitted ());
  check bool_c "empty after clear" true (Trace.records () = [])

let test_disabled_is_noop () =
  Control.disable ();
  Metrics.bump "t.off";
  Metrics.bump_by "t.off" 5;
  Trace.emit (Trace.Custom { name = "t"; value = 1 });
  check bool_c "bump registers nothing" false (Metrics.exists "t.off");
  check int_c "ring untouched" 0 (Trace.emitted ());
  Control.enable ();
  Metrics.bump "t.on";
  check int_c "enabled again" 1 (Metrics.counter_value "t.on")

let test_json_export () =
  Metrics.bump_by "t.j" 3;
  Metrics.observe (Metrics.histogram ~bounds:[| 10 |] "t.jh") 4;
  let j = Metrics.to_json () in
  (match Json.member "counters" j with
  | Some (Json.Obj kvs) ->
      check bool_c "counter exported" true (List.assoc "t.j" kvs = Json.Int 3)
  | _ -> Alcotest.fail "no counters object");
  (match Json.member "histograms" j with
  | Some (Json.Obj kvs) -> (
      match Json.member "count" (List.assoc "t.jh" kvs) with
      | Some (Json.Int 1) -> ()
      | _ -> Alcotest.fail "histogram count wrong")
  | _ -> Alcotest.fail "no histograms object");
  Trace.emit (Trace.Stlb_miss { addr = 0xc0de; refill = true });
  (match Json.member "records" (Trace.to_json ()) with
  | Some (Json.List [ r ]) ->
      check bool_c "event name" true
        (Json.member "event" r = Some (Json.String "stlb.miss"));
      check bool_c "refill field" true
        (Json.member "refill" r = Some (Json.Bool true))
  | _ -> Alcotest.fail "expected one trace record");
  (* the compact printer round-trips the reserved characters *)
  check bool_c "string escaping" true
    (Json.to_string (Json.String "a\"b\\c\n") = {|"a\"b\\c\n"|})

(* §6.1/Table 1: the error-free tx path runs entirely in the hypervisor —
   zero upcalls; every stlb probe after warmup hits. *)
let test_error_free_transmit_no_upcalls () =
  let w = Twindrivers.World.create ~nics:1 Twindrivers.Config.Xen_twin in
  let r = Twindrivers.Measure.run_transmit ~packets:60 w in
  check int_c "no upcall invocations" 0 (Metrics.counter_value "upcall.invocations");
  check bool_c "no upcall events in trace" false
    (Trace.exists (function
      | Trace.Upcall_enter _ | Trace.Upcall_exit _ -> true
      | _ -> false));
  check bool_c "frames were transmitted" true
    (Metrics.counter_value "nic.tx.frames" >= 60);
  check int_c "no stlb misses after warmup" 0 (Metrics.counter_value "stlb.miss");
  check bool_c "stlb hits recorded" true (Metrics.counter_value "stlb.hit" > 0);
  (* the Measure snapshot carries the ledger mirrors the cross-check
     already validated against the authoritative ledger *)
  check bool_c "snapshot has ledger mirror" true
    (List.mem_assoc "ledger.cycles.driver" r.Twindrivers.Measure.metrics)

(* the acceptance property: observability must not perturb the simulated
   machine — identical worlds yield bit-identical cycle counts either way *)
let test_disabled_bit_identical () =
  Control.disable ();
  let run () =
    let w = Twindrivers.World.create ~nics:1 Twindrivers.Config.Xen_twin in
    Twindrivers.Measure.run_transmit ~packets:40 w
  in
  let off = run () in
  check bool_c "no snapshot when disabled" true
    (off.Twindrivers.Measure.metrics = []);
  Control.enable ();
  let on = run () in
  check bool_c "cycles/packet identical" true
    (off.Twindrivers.Measure.cycles_per_packet
    = on.Twindrivers.Measure.cycles_per_packet);
  check bool_c "throughput identical" true
    (off.Twindrivers.Measure.throughput_mbps
    = on.Twindrivers.Measure.throughput_mbps)

let suite =
  [
    Alcotest.test_case "registry" `Quick (with_fresh test_registry);
    Alcotest.test_case "reset" `Quick (with_fresh test_reset);
    Alcotest.test_case "percentiles" `Quick (with_fresh test_percentiles);
    Alcotest.test_case "ring wraparound" `Quick (with_fresh test_ring_wraparound);
    Alcotest.test_case "disabled is a no-op" `Quick
      (with_fresh test_disabled_is_noop);
    Alcotest.test_case "json export" `Quick (with_fresh test_json_export);
    Alcotest.test_case "error-free tx: no upcalls" `Quick
      (with_fresh test_error_free_transmit_no_upcalls);
    Alcotest.test_case "disabled run bit-identical" `Quick
      (with_fresh test_disabled_bit_identical);
  ]

(* Map-window reclaim, straddle poisoning, multi-frame delivery and
   notification-batch equivalence. *)

open Td_mem
open Td_misa
open Td_svm

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let small_window_runtime m ~window_pages =
  let rt =
    Runtime.create_hypervisor ~window_pages ~dom0:m.Harness.dom0
      ~hyp:m.Harness.hyp ()
  in
  Runtime.register_natives rt m.Harness.natives;
  rt

(* a working set several times the window size soaks steadily: cold pairs
   are reclaimed and every translation still reads the right bytes *)
let test_soak_reclaim () =
  let m = Harness.make_machine () in
  let window_pages = 64 in
  let rt = small_window_runtime m ~window_pages in
  let pages = 256 in
  let base = Addr_space.heap_alloc m.Harness.dom0 (pages * Layout.page_size) in
  for i = 0 to pages - 1 do
    Addr_space.write m.Harness.dom0
      (base + (i * Layout.page_size) + 16)
      Width.W32 (0xA000 + i)
  done;
  for _round = 1 to 3 do
    for i = 0 to pages - 1 do
      let t = Runtime.translate rt (base + (i * Layout.page_size) + 16) in
      check int_c "value survives reclaim" (0xA000 + i)
        (Addr_space.read m.Harness.hyp t Width.W32)
    done
  done;
  check bool_c "reclaims happened" true (Runtime.window_reclaims rt > 0);
  check bool_c "window stays bounded" true
    (Runtime.window_pages_in_use rt <= window_pages)

let test_soak_keeps_pinned_pages () =
  let m = Harness.make_machine () in
  let rt = small_window_runtime m ~window_pages:64 in
  let pinned = Addr_space.heap_alloc m.Harness.dom0 64 in
  Addr_space.write m.Harness.dom0 pinned Width.W32 0xBEEF;
  let mapped = Runtime.persistent_map rt pinned in
  let pages = 256 in
  let base = Addr_space.heap_alloc m.Harness.dom0 (pages * Layout.page_size) in
  for i = 0 to pages - 1 do
    ignore (Runtime.translate rt (base + (i * Layout.page_size)))
  done;
  check bool_c "soak reclaimed around the pin" true
    (Runtime.window_reclaims rt > 0);
  check int_c "pinned mapping unchanged" mapped (Runtime.translate rt pinned);
  check int_c "pinned data intact" 0xBEEF
    (Addr_space.read m.Harness.hyp mapped Width.W32)

let test_all_pinned_fails_loudly () =
  let m = Harness.make_machine () in
  let rt = small_window_runtime m ~window_pages:4 in
  (* two slots, both pinned: the next miss must fail with a clear error,
     not spin in the clock sweep *)
  let a = Addr_space.heap_alloc m.Harness.dom0 Layout.page_size in
  let b = Addr_space.heap_alloc m.Harness.dom0 Layout.page_size in
  ignore (Runtime.persistent_map rt a);
  ignore (Runtime.persistent_map rt b);
  let c = Addr_space.heap_alloc m.Harness.dom0 Layout.page_size in
  check bool_c "exhaustion raises" true
    (match Runtime.translate rt c with
    | exception Failure msg ->
        (* the message must name the pinning, not the old hard 16 MB cap *)
        String.length msg > 0
    | _ -> false)

(* a mapped page whose dom0 successor does not exist must fault on a
   straddling access instead of silently reading a single-page mapping *)
let test_straddle_boundary_faults () =
  let m = Harness.make_machine () in
  let rt = Harness.hyp_runtime m in
  (* one isolated page: the next dom0 page is unmapped *)
  let page = 0xC600_0000 in
  Addr_space.alloc_region m.Harness.dom0 ~vaddr:page ~pages:1;
  Addr_space.write m.Harness.dom0 (page + 0xFFC) Width.W32 0x11223344;
  let t = Runtime.translate rt (page + 0xFFC) in
  check int_c "last word of the page reads fine" 0x11223344
    (Addr_space.read m.Harness.hyp t Width.W32);
  check bool_c "straddling read faults" true
    (match Addr_space.read m.Harness.hyp (t + 2) Width.W32 with
    | exception Runtime.Fault _ -> true
    | _ -> false);
  check bool_c "straddling write faults" true
    (match Addr_space.write m.Harness.hyp (t + 2) Width.W32 0 with
    | exception Runtime.Fault _ -> true
    | _ -> false)

(* several frames arriving before one pump must all reach the consumer —
   the regression the rx queue fixes *)
let payload_tag i = Printf.sprintf "pkt-%02d-%s" i (String.make 56 'x')

let drain w =
  let rec go acc =
    match Twindrivers.World.rx_pop w with
    | None -> List.rev acc
    | Some p -> go (p :: acc)
  in
  go []

let test_multi_frame_pump cfg () =
  let open Twindrivers in
  let w = World.create ~nics:1 cfg in
  let n = 5 in
  for i = 0 to n - 1 do
    World.inject_rx w ~nic:0 ~payload:(payload_tag i)
  done;
  World.pump w;
  check int_c "all frames delivered" n (World.delivered_rx_frames w);
  check int_c "no queue drops" 0 (World.rx_drops w);
  let got = drain w in
  check int_c "all frames popped" n (List.length got);
  List.iteri
    (fun i p -> check Alcotest.string "payload in order" (payload_tag i) p)
    got

(* batching only changes when notifications fire, never the bytes: the
   received payload stream and the wire transmit stream must be identical
   between batch=1 and batch=8 *)
let run_traffic ~batch cfg =
  let open Twindrivers in
  let tuning = { Config.default_tuning with Config.notify_batch = batch } in
  let w = World.create ~nics:1 ~tuning cfg in
  for i = 0 to 10 do
    ignore (World.transmit w ~nic:0 ~payload:(payload_tag i));
    World.inject_rx w ~nic:0 ~payload:(payload_tag i);
    if i mod 4 = 3 then World.pump w
  done;
  World.pump w;
  (drain w, World.wire_tx_frames w, World.wire_tx_bytes w)

let test_batch_identical cfg () =
  let rx1, txf1, txb1 = run_traffic ~batch:1 cfg in
  let rx8, txf8, txb8 = run_traffic ~batch:8 cfg in
  check int_c "same wire frames" txf1 txf8;
  check int_c "same wire bytes" txb1 txb8;
  check (Alcotest.list Alcotest.string) "same rx payload stream" rx1 rx8

(* observability: reclaim, invalidation and the inline-probe hits are all
   visible as counters/trace events when enabled *)
let test_obs_counters () =
  Td_obs.Control.enable ();
  Fun.protect ~finally:Td_obs.Control.disable (fun () ->
      Td_obs.Metrics.reset_all ();
      Td_obs.Trace.clear ();
      let m = Harness.make_machine () in
      let rt = small_window_runtime m ~window_pages:64 in
      let va = Addr_space.heap_alloc m.Harness.dom0 64 in
      ignore (Runtime.translate rt va);
      Runtime.invalidate_page rt va;
      check bool_c "stlb.invalidate counted" true
        (Td_obs.Metrics.counter_value "stlb.invalidate" >= 1);
      check bool_c "stlb.invalidate traced" true
        (Td_obs.Trace.exists (function
          | Td_obs.Trace.Stlb_invalidate _ -> true
          | _ -> false));
      let pages = 256 in
      let base =
        Addr_space.heap_alloc m.Harness.dom0 (pages * Layout.page_size)
      in
      for i = 0 to pages - 1 do
        ignore (Runtime.translate rt (base + (i * Layout.page_size)))
      done;
      check bool_c "svm.window_reclaim counted" true
        (Td_obs.Metrics.counter_value "svm.window_reclaim" > 0);
      check bool_c "window_reclaim traced" true
        (Td_obs.Trace.exists (function
          | Td_obs.Trace.Window_reclaim _ -> true
          | _ -> false)))

(* the interpreter watcher credits inline fast-path hits, so a twin
   transmit run shows far more stlb.hit than the handful the host-side
   translate calls used to account for *)
let test_inline_hits_credited () =
  Td_obs.Control.enable ();
  Fun.protect ~finally:Td_obs.Control.disable (fun () ->
      let open Twindrivers in
      let w = World.create ~nics:1 Config.Xen_twin in
      World.reset_measurement w;
      let payload = String.make 1500 'x' in
      for i = 0 to 19 do
        ignore (World.transmit w ~nic:0 ~payload);
        if i mod 8 = 7 then World.pump w
      done;
      World.pump w;
      check bool_c "inline hits counted" true
        (Td_obs.Metrics.counter_value "stlb.hit" > 50))

let suite =
  [
    Alcotest.test_case "soak: reclaim under pressure" `Quick test_soak_reclaim;
    Alcotest.test_case "soak: pinned pages survive" `Quick
      test_soak_keeps_pinned_pages;
    Alcotest.test_case "all-pinned window fails loudly" `Quick
      test_all_pinned_fails_loudly;
    Alcotest.test_case "straddle at dom0 boundary faults" `Quick
      test_straddle_boundary_faults;
    Alcotest.test_case "multi-frame pump (Linux)" `Quick
      (test_multi_frame_pump Twindrivers.Config.Native_linux);
    Alcotest.test_case "multi-frame pump (domU-twin)" `Quick
      (test_multi_frame_pump Twindrivers.Config.Xen_twin);
    Alcotest.test_case "batch stream identical (domU)" `Quick
      (test_batch_identical Twindrivers.Config.Xen_domU);
    Alcotest.test_case "batch stream identical (domU-twin)" `Quick
      (test_batch_identical Twindrivers.Config.Xen_twin);
    Alcotest.test_case "reclaim/invalidate observability" `Quick
      test_obs_counters;
    Alcotest.test_case "inline stlb hits credited" `Quick
      test_inline_hits_credited;
  ]

(* Tests for the MISA interpreter: instruction semantics, calls, natives,
   cost accounting, timeouts. *)

open Td_misa
open Td_cpu

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* Run a routine built with [f] in a dom0 CPU; returns (EAX, state). *)
let run ?(args = []) ?(setup = fun _ -> ()) f =
  let m = Harness.make_machine () in
  let b = Builder.create "t" in
  Builder.label b "entry";
  f b m;
  let src = Builder.finish b in
  let symbols name = Native.address_of m.Harness.natives name in
  let prog =
    Program.assemble ~symbols:(fun n -> symbols n)
      ~base:Td_mem.Layout.vm_driver_code_base src
  in
  Code_registry.register m.Harness.registry prog;
  let st = Harness.dom0_cpu m in
  setup st;
  let interp = Harness.interp_of m st in
  let r = Interp.call interp ~entry:(Program.addr_of_label prog "entry") ~args in
  (r, st, m)

let ret_of ?args ?setup f =
  let r, _, _ = run ?args ?setup f in
  r

let test_mov_imm () =
  check int_c "mov imm" 17
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 17) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_arith () =
  check int_c "add/sub chain" 30
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 50) (Builder.reg Reg.EAX);
         Builder.movl b (Builder.imm 25) (Builder.reg Reg.EBX);
         Builder.subl b (Builder.reg Reg.EBX) (Builder.reg Reg.EAX);
         Builder.addl b (Builder.imm 5) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_wraparound () =
  check int_c "32-bit wrap" 0
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 0xFFFFFFFF) (Builder.reg Reg.EAX);
         Builder.addl b (Builder.imm 1) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_logic_shifts () =
  check int_c "logic" 0xF0
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 0xFF) (Builder.reg Reg.EAX);
         Builder.andl b (Builder.imm 0xF0) (Builder.reg Reg.EAX);
         Builder.ret b));
  check int_c "shl" 40
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 5) (Builder.reg Reg.EAX);
         Builder.shll b (Builder.imm 3) (Builder.reg Reg.EAX);
         Builder.ret b));
  check int_c "shr" 5
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 40) (Builder.reg Reg.EAX);
         Builder.shrl b (Builder.imm 3) (Builder.reg Reg.EAX);
         Builder.ret b));
  check int_c "sar negative" 0xFFFFFFFF
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 0x80000000) (Builder.reg Reg.EAX);
         Builder.sarl b (Builder.imm 31) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_conditions_signed_unsigned () =
  (* -1 (unsigned 0xFFFFFFFF) vs 1: signed less, unsigned above *)
  let result jcc_cond =
    ret_of (fun b _ ->
        Builder.movl b (Builder.imm 0xFFFFFFFF) (Builder.reg Reg.EBX);
        Builder.cmpl b (Builder.imm 1) (Builder.reg Reg.EBX);
        Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
        Builder.jcc b jcc_cond "yes";
        Builder.ret b;
        Builder.label b "yes";
        Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  check int_c "signed: -1 < 1" 1 (result Cond.L);
  check int_c "unsigned: 0xffffffff > 1" 1 (result Cond.A);
  check int_c "not equal" 1 (result Cond.NE);
  check int_c "not ge" 0 (result Cond.GE)

let test_loop_with_counter () =
  (* sum 1..10 via loop *)
  check int_c "loop sum" 55
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
         Builder.movl b (Builder.imm 10) (Builder.reg Reg.ECX);
         Builder.label b "loop";
         Builder.addl b (Builder.reg Reg.ECX) (Builder.reg Reg.EAX);
         Builder.decl b (Builder.reg Reg.ECX);
         Builder.jne b "loop";
         Builder.ret b))

let test_memory_ops () =
  let _, st, m =
    run (fun b m ->
        let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
        Builder.movl b (Builder.imm buf) (Builder.reg Reg.EBX);
        Builder.movl b (Builder.imm 0x1234) (Builder.mem ~base:Reg.EBX 8);
        Builder.movl b (Builder.mem ~base:Reg.EBX 8) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.imm 1) (Builder.mem ~base:Reg.EBX 8);
        Builder.ret b)
  in
  ignore m;
  check int_c "loaded" 0x1234 (State.get st Reg.EAX)

let test_narrow_widths () =
  let r =
    ret_of (fun b m ->
        let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
        Builder.movl b (Builder.imm buf) (Builder.reg Reg.EBX);
        Builder.movl b (Builder.imm 0xAABBCCDD) (Builder.mem ~base:Reg.EBX 0);
        Builder.movzxb b (Builder.mem ~base:Reg.EBX 1) Reg.EAX;
        Builder.ret b)
  in
  check int_c "movzx byte 1" 0xCC r

let test_partial_register_write () =
  check int_c "movb preserves upper bits" 0x12345678
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 0x123456FF) (Builder.reg Reg.EAX);
         Builder.movb b (Builder.imm 0x78) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_push_pop () =
  check int_c "push/pop transfers" 77
    (ret_of (fun b _ ->
         Builder.movl b (Builder.imm 77) (Builder.reg Reg.EBX);
         Builder.pushl b (Builder.reg Reg.EBX);
         Builder.popl b (Builder.reg Reg.EAX);
         Builder.ret b))

let test_call_ret_stack_args () =
  check int_c "function call with stack args" 12
    (ret_of (fun b _ ->
         (* entry: push 5; push 7; call add2; add esp, 8; ret *)
         Builder.pushl b (Builder.imm 5);
         Builder.pushl b (Builder.imm 7);
         Builder.call b "add2";
         Builder.addl b (Builder.imm 8) (Builder.reg Reg.ESP);
         Builder.ret b;
         Builder.label b "add2";
         Builder.movl b (Builder.mem ~base:Reg.ESP 4) (Builder.reg Reg.EAX);
         Builder.addl b (Builder.mem ~base:Reg.ESP 8) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_args_via_interp_call () =
  let r, _, _ =
    run
      ~args:[ 100; 23 ]
      (fun b _ ->
        Builder.movl b (Builder.mem ~base:Reg.ESP 4) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.mem ~base:Reg.ESP 8) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  check int_c "interp args" 123 r

let test_native_call () =
  check int_c "native doubles arg" 42
    (ret_of (fun b m ->
         ignore
           (Native.register m.Harness.natives "double" (fun st ->
                State.set st Reg.EAX (2 * State.stack_arg st 0)));
         Builder.pushl b (Builder.imm 21);
         Builder.call b "double";
         Builder.addl b (Builder.imm 4) (Builder.reg Reg.ESP);
         Builder.ret b))

let test_string_rep_movs () =
  let _, st, m =
    run (fun b m ->
        let src = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
        let dst = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
        Td_mem.Addr_space.write_block m.Harness.dom0 src (Bytes.of_string "hello, twin drivers!");
        Builder.movl b (Builder.imm src) (Builder.reg Reg.ESI);
        Builder.movl b (Builder.imm dst) (Builder.reg Reg.EDI);
        Builder.movl b (Builder.imm 20) (Builder.reg Reg.ECX);
        Builder.rep_movsb b;
        Builder.movl b (Builder.imm dst) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  let dst = State.get st Reg.EAX in
  check bool_c "copied" true
    (Bytes.to_string (Td_mem.Addr_space.read_block m.Harness.dom0 dst 20)
    = "hello, twin drivers!");
  check int_c "ecx zero" 0 (State.get st Reg.ECX)

let test_pushf_popf () =
  check int_c "flags preserved" 1
    (ret_of (fun b _ ->
         (* set ZF via xor, save, clobber, restore *)
         Builder.xorl b (Builder.reg Reg.EBX) (Builder.reg Reg.EBX);
         Builder.ins b Insn.Pushf;
         Builder.cmpl b (Builder.imm 1) (Builder.reg Reg.EBX);
         Builder.ins b Insn.Popf;
         Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
         Builder.je b "z";
         Builder.ret b;
         Builder.label b "z";
         Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
         Builder.ret b))

let test_timeout () =
  let m = Harness.make_machine () in
  let b = Builder.create "spin" in
  Builder.label b "entry";
  Builder.label b "loop";
  Builder.jmp b "loop";
  let prog =
    Program.assemble ~base:Td_mem.Layout.vm_driver_code_base (Builder.finish b)
  in
  Code_registry.register m.Harness.registry prog;
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  check bool_c "runaway driver times out" true
    (match
       Interp.call ~max_steps:1000 interp
         ~entry:(Program.addr_of_label prog "entry")
         ~args:[]
     with
    | exception Interp.Timeout _ -> true
    | _ -> false)

let test_fault_on_unmapped_code () =
  let m = Harness.make_machine () in
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  check bool_c "fault" true
    (match Interp.call interp ~entry:0x12345678 ~args:[] with
    | exception Interp.Fault _ -> true
    | _ -> false)

let test_cycles_accumulate () =
  let _, st, _ =
    run (fun b _ ->
        Builder.movl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.addl b (Builder.imm 1) (Builder.reg Reg.EAX);
        Builder.ret b)
  in
  check bool_c "cycles counted" true (st.State.cycles > 0);
  check bool_c "steps counted" true (st.State.steps >= 3)

let test_tlb_flush_on_switch () =
  let m = Harness.make_machine () in
  let st = Harness.dom0_cpu m in
  let va = Td_mem.Addr_space.heap_alloc m.Harness.dom0 16 in
  ignore (State.read_mem st va Width.W32);
  ignore (Tlb.access st.State.tlb (Td_mem.Layout.page_of va));
  check bool_c "tlb warm" true (Tlb.access st.State.tlb (Td_mem.Layout.page_of va));
  State.switch_space st m.Harness.dom0;
  check bool_c "tlb cold after switch" false
    (Tlb.access st.State.tlb (Td_mem.Layout.page_of va))

(* pushf encoding: ZF=1, SF=2, CF=4, OF=8 *)
let flags_after f =
  ret_of (fun b m ->
      f b m;
      Builder.ins b Insn.Pushf;
      Builder.popl b (Builder.reg Reg.EAX);
      Builder.ret b)

let test_imul_overflow_flags () =
  let fl =
    flags_after (fun b _ ->
        Builder.movl b (Builder.imm 0x10000) (Builder.reg Reg.EBX);
        Builder.imull b (Builder.imm 0x10000) Reg.EBX)
  in
  check bool_c "cf set on signed overflow" true (fl land 4 <> 0);
  check bool_c "of set on signed overflow" true (fl land 8 <> 0);
  let fl =
    flags_after (fun b _ ->
        Builder.movl b (Builder.imm 1000) (Builder.reg Reg.EBX);
        Builder.imull b (Builder.imm 1000) Reg.EBX)
  in
  check bool_c "cf clear when product fits" false (fl land 4 <> 0);
  check bool_c "of clear when product fits" false (fl land 8 <> 0);
  (* -2 * 2^30 = -2^31: the most negative int32 still fits *)
  let fl =
    flags_after (fun b _ ->
        Builder.movl b (Builder.imm 0x40000000) (Builder.reg Reg.EBX);
        Builder.imull b (Builder.imm 0xFFFFFFFE) Reg.EBX)
  in
  check bool_c "min-int32 product fits" false (fl land (4 lor 8) <> 0)

let test_rep_consumes_call_budget () =
  (* a corrupted huge ECX must trip the per-call watchdog, not spin it *)
  let m = Harness.make_machine () in
  let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 8192 in
  let b = Builder.create "rep" in
  Builder.label b "entry";
  Builder.movl b (Builder.imm buf) (Builder.reg Reg.EDI);
  Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
  Builder.movl b (Builder.imm 10_000_000) (Builder.reg Reg.ECX);
  Builder.rep_stosl b;
  Builder.ret b;
  let prog =
    Program.assemble ~base:Td_mem.Layout.vm_driver_code_base (Builder.finish b)
  in
  Code_registry.register m.Harness.registry prog;
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  check bool_c "huge rep ECX trips the timeout" true
    (match
       Interp.call ~max_steps:500 interp
         ~entry:(Program.addr_of_label prog "entry")
         ~args:[]
     with
    | exception Interp.Timeout _ -> true
    | _ -> false)

(* a driver jumping to a misaligned or out-of-range address must surface
   as [Interp.Fault] (so recovery policies apply), never as the
   [Invalid_argument] that [Program.index_of_addr] raises internally *)
let test_fault_on_bad_jump () =
  let faults dispatch target =
    let m = Harness.make_machine () in
    let b = Builder.create "mis" in
    Builder.label b "entry";
    Builder.jmp_ind b (Builder.imm target);
    let prog =
      Program.assemble ~base:Td_mem.Layout.vm_driver_code_base
        (Builder.finish b)
    in
    Code_registry.register m.Harness.registry prog;
    let st = Harness.dom0_cpu m in
    let interp = Harness.interp_of m st in
    Interp.set_dispatch interp dispatch;
    match
      Interp.call interp
        ~entry:(Program.addr_of_label prog "entry")
        ~args:[]
    with
    | exception Interp.Fault _ -> true
    | exception Invalid_argument _ -> false
    | _ -> false
  in
  let misaligned = Td_mem.Layout.vm_driver_code_base + 2 in
  let out_of_range = Td_mem.Layout.vm_driver_code_base + 0x1000 in
  check bool_c "misaligned, block engine" true (faults Interp.Block misaligned);
  check bool_c "misaligned, per-step engine" true
    (faults Interp.Per_step misaligned);
  check bool_c "misaligned, compiled engine" true
    (faults Interp.Compiled misaligned);
  check bool_c "out of range, block engine" true
    (faults Interp.Block out_of_range);
  check bool_c "out of range, per-step engine" true
    (faults Interp.Per_step out_of_range);
  check bool_c "out of range, compiled engine" true
    (faults Interp.Compiled out_of_range)

let test_block_cache_invalidation_on_replace () =
  let m = Harness.make_machine () in
  let base = Td_mem.Layout.vm_driver_code_base in
  let image v =
    let b = Builder.create (Printf.sprintf "img%d" v) in
    Builder.label b "entry";
    Builder.movl b (Builder.imm v) (Builder.reg Reg.EAX);
    Builder.ret b;
    Program.assemble ~base (Builder.finish b)
  in
  let p1 = image 1 in
  Code_registry.register m.Harness.registry p1;
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  let entry = Program.addr_of_label p1 "entry" in
  check int_c "first image" 1 (Interp.call interp ~entry ~args:[]);
  Code_registry.replace m.Harness.registry (image 2);
  check int_c "replacement executes, not the cached block" 2
    (Interp.call interp ~entry ~args:[]);
  check bool_c "block cache was flushed" true (Interp.invalidations interp >= 1)

let test_engine_modes_identical_results () =
  let run_mode ?hook dispatch =
    let m = Harness.make_machine () in
    let b = Builder.create "sum" in
    Builder.label b "entry";
    Builder.movl b (Builder.imm 0) (Builder.reg Reg.EAX);
    Builder.movl b (Builder.imm 10) (Builder.reg Reg.ECX);
    Builder.label b "loop";
    Builder.addl b (Builder.reg Reg.ECX) (Builder.reg Reg.EAX);
    Builder.decl b (Builder.reg Reg.ECX);
    Builder.jne b "loop";
    Builder.ret b;
    let prog =
      Program.assemble ~base:Td_mem.Layout.vm_driver_code_base
        (Builder.finish b)
    in
    Code_registry.register m.Harness.registry prog;
    let st = Harness.dom0_cpu m in
    let interp = Interp.create ?hook st m.Harness.registry m.Harness.natives in
    Interp.set_dispatch interp dispatch;
    let r =
      Interp.call interp ~entry:(Program.addr_of_label prog "entry") ~args:[]
    in
    (r, st.State.cycles, st.State.steps)
  in
  let free = run_mode Interp.Block in
  let hooked = run_mode ~hook:(fun _ _ -> ()) Interp.Block in
  let legacy = run_mode Interp.Per_step in
  let compiled = run_mode Interp.Compiled in
  check bool_c "watcher does not change simulated results" true (free = hooked);
  check bool_c "per-step does not change simulated results" true (free = legacy);
  check bool_c "compiled does not change simulated results" true
    (free = compiled)

(* Regression: a block promoted to a compiled superblock in the same pump
   as a [Code_registry.replace] (the supervised-reload path) must never
   execute its stale closure — the generation check flushes the compiled
   cache together with the block cache before any compiled dispatch. *)
let test_compiled_invalidation_on_replace () =
  let m = Harness.make_machine () in
  let base = Td_mem.Layout.vm_driver_code_base in
  let image v =
    let b = Builder.create (Printf.sprintf "img%d" v) in
    Builder.label b "entry";
    Builder.movl b (Builder.imm v) (Builder.reg Reg.EAX);
    Builder.ret b;
    Program.assemble ~base (Builder.finish b)
  in
  let p1 = image 1 in
  Code_registry.register m.Harness.registry p1;
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  Interp.set_dispatch interp Interp.Compiled;
  Interp.set_compile_threshold interp 1;
  let entry = Program.addr_of_label p1 "entry" in
  (* warm: count hot, promote, then dispatch the compiled closure *)
  for _ = 1 to 3 do
    check int_c "first image" 1 (Interp.call interp ~entry ~args:[])
  done;
  check bool_c "entry was promoted" true (Interp.compiled_blocks interp >= 1);
  check bool_c "compiled closure ran" true (Interp.compiled_hits interp >= 1);
  Code_registry.replace m.Harness.registry (image 2);
  check int_c "replacement executes, not the stale closure" 2
    (Interp.call interp ~entry ~args:[]);
  check bool_c "compiled cache was flushed" true
    (Interp.invalidations interp >= 1)

(* The in-block stlb-redundancy elimination must fire (two accesses
   through the same base register to the same page) and must not change
   the result or the simulated cycles vs the per-step engine. *)
let test_compiled_stlb_elision () =
  let run_mode dispatch =
    let m = Harness.make_machine () in
    let buf = Td_mem.Addr_space.heap_alloc m.Harness.dom0 64 in
    let b = Builder.create "mem" in
    Builder.label b "entry";
    Builder.movl b (Builder.imm buf) (Builder.reg Reg.EDX);
    Builder.movl b (Builder.imm 40) (Builder.mem ~base:Reg.EDX 0);
    Builder.movl b (Builder.imm 2) (Builder.mem ~base:Reg.EDX 4);
    Builder.movl b (Builder.mem ~base:Reg.EDX 0) (Builder.reg Reg.EAX);
    Builder.addl b (Builder.mem ~base:Reg.EDX 4) (Builder.reg Reg.EAX);
    Builder.ret b;
    let prog =
      Program.assemble ~base:Td_mem.Layout.vm_driver_code_base
        (Builder.finish b)
    in
    Code_registry.register m.Harness.registry prog;
    let st = Harness.dom0_cpu m in
    let interp = Harness.interp_of m st in
    Interp.set_dispatch interp dispatch;
    Interp.set_compile_threshold interp 1;
    let entry = Program.addr_of_label prog "entry" in
    let r = ref 0 in
    for _ = 1 to 3 do
      r := Interp.call interp ~entry ~args:[]
    done;
    (!r, st.State.cycles, st.State.steps, Interp.stlb_elided interp)
  in
  let rc, cc, sc, elided = run_mode Interp.Compiled in
  let rp, cp, sp, elided_ps = run_mode Interp.Per_step in
  check int_c "compiled result" 42 rc;
  check int_c "per-step result" 42 rp;
  check bool_c "cycles identical" true (cc = cp);
  check bool_c "steps identical" true (sc = sp);
  check bool_c "compiled run elided stlb translations" true (elided > 0);
  check int_c "per-step run elides nothing" 0 elided_ps

let suite =
  [
    Alcotest.test_case "mov imm" `Quick test_mov_imm;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "logic/shifts" `Quick test_logic_shifts;
    Alcotest.test_case "signed/unsigned conditions" `Quick
      test_conditions_signed_unsigned;
    Alcotest.test_case "loop" `Quick test_loop_with_counter;
    Alcotest.test_case "memory ops" `Quick test_memory_ops;
    Alcotest.test_case "narrow widths" `Quick test_narrow_widths;
    Alcotest.test_case "partial register write" `Quick
      test_partial_register_write;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "call/ret stack args" `Quick test_call_ret_stack_args;
    Alcotest.test_case "interp call args" `Quick test_args_via_interp_call;
    Alcotest.test_case "native call" `Quick test_native_call;
    Alcotest.test_case "rep movs" `Quick test_string_rep_movs;
    Alcotest.test_case "pushf/popf" `Quick test_pushf_popf;
    Alcotest.test_case "timeout" `Quick test_timeout;
    Alcotest.test_case "fault unmapped code" `Quick test_fault_on_unmapped_code;
    Alcotest.test_case "cycles accumulate" `Quick test_cycles_accumulate;
    Alcotest.test_case "tlb flush on switch" `Quick test_tlb_flush_on_switch;
    Alcotest.test_case "imul overflow flags" `Quick test_imul_overflow_flags;
    Alcotest.test_case "rep consumes call budget" `Quick
      test_rep_consumes_call_budget;
    Alcotest.test_case "fault on bad jump" `Quick test_fault_on_bad_jump;
    Alcotest.test_case "block cache invalidation" `Quick
      test_block_cache_invalidation_on_replace;
    Alcotest.test_case "engine modes identical" `Quick
      test_engine_modes_identical_results;
    Alcotest.test_case "compiled cache invalidation" `Quick
      test_compiled_invalidation_on_replace;
    Alcotest.test_case "compiled stlb elision" `Quick
      test_compiled_stlb_elision;
  ]

(* Fault-injection engine and driver-supervisor tests: deterministic
   seeded injection, zero-plan bit-identity, abort containment,
   shadow-state restoration, quarantine errors, typed guest faults. *)

open Twindrivers

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let payload = "fault soak frame " ^ String.make 600 'f'

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let with_plan plan f =
  Td_fault.Engine.install plan;
  Fun.protect ~finally:(fun () -> Td_fault.Engine.clear ()) f

(* --- engine: same plan, same stream --- *)

let test_engine_deterministic () =
  let sample () =
    with_plan { (Td_fault.uniform_plan ~seed:7 0.3) with interp_bitflip = 0.3 }
      (fun () ->
        List.init 200 (fun _ -> Td_fault.Engine.fire Td_fault.Interp_bitflip))
  in
  let a = sample () and b = sample () in
  check bool_c "same seed, same injection sequence" true (a = b);
  check bool_c "some fired" true (List.mem true a);
  check bool_c "some did not" true (List.mem false a);
  let c =
    with_plan { (Td_fault.uniform_plan ~seed:8 0.3) with interp_bitflip = 0.3 }
      (fun () ->
        List.init 200 (fun _ -> Td_fault.Engine.fire Td_fault.Interp_bitflip))
  in
  check bool_c "different seed, different sequence" true (a <> c)

let test_engine_counters () =
  with_plan (Td_fault.uniform_plan ~seed:3 1.0) (fun () ->
      ignore (Td_fault.Engine.fire Td_fault.Nic_corrupt_rx);
      ignore (Td_fault.Engine.fire Td_fault.Upcall_fail);
      check int_c "two injections counted" 2 (Td_fault.Engine.injected ());
      check int_c "per-site count" 1
        (Td_fault.Engine.injected_at Td_fault.Nic_corrupt_rx);
      Td_fault.Engine.suspend (fun () ->
          check bool_c "suspended engine never fires" false
            (Td_fault.Engine.fire Td_fault.Nic_corrupt_rx));
      Td_fault.Engine.note_lost 3;
      check int_c "lost frames ledger" 3 (Td_fault.Engine.lost_frames ());
      Td_fault.Engine.reset_counters ();
      check int_c "counters reset" 0 (Td_fault.Engine.injected ()))

(* --- zero plan: bit-identical to no plan at all --- *)

let run_workload w =
  for i = 0 to 39 do
    ignore (World.transmit w ~nic:(i mod 2) ~payload);
    World.inject_rx w ~nic:(i mod 2) ~payload;
    if i mod 8 = 7 then World.pump w
  done;
  World.pump w;
  World.tick w;
  ( List.map (fun c -> Td_xen.Ledger.total (World.ledger w) c)
      Td_xen.Ledger.categories,
    World.wire_tx_frames w,
    World.wire_tx_bytes w,
    World.delivered_rx_frames w,
    World.delivered_rx_bytes w )

let test_zero_plan_bit_identical () =
  let baseline = run_workload (World.create ~nics:2 Config.Xen_twin) in
  let zeroed =
    with_plan Td_fault.zero_plan (fun () ->
        run_workload (World.create ~nics:2 Config.Xen_twin))
  in
  check bool_c "ledger and wire identical under zero plan" true
    (baseline = zeroed);
  check int_c "zero plan injected nothing" 0 (Td_fault.Engine.injected ())

(* --- SVM wild access: abort contained, hypervisor survives --- *)

let wild_only = { Td_fault.zero_plan with Td_fault.svm_wild_access = 1.0 }

let test_wild_access_contained () =
  let w = World.create ~nics:2 Config.Xen_twin in
  with_plan wild_only (fun () ->
      check bool_c "transmit aborts" true
        (match World.transmit w ~nic:0 ~payload with
        | exception World.Driver_aborted reason ->
            (* the injected wild access surfaces as an SVM fault *)
            contains ~sub:"fault" reason || contains ~sub:"injected" reason
        | _ -> false));
  (* fail-stop: the NIC is quarantined, with typed errors *)
  check bool_c "nic quarantined" true (World.is_quarantined w ~nic:0);
  check bool_c "read_stats raises typed error" true
    (match World.read_stats w ~nic:0 with
    | exception World.Nic_quarantined { nic = 0 } -> true
    | _ -> false);
  check bool_c "run_watchdog raises typed error" true
    (match World.run_watchdog w ~nic:0 with
    | exception World.Nic_quarantined { nic = 0 } -> true
    | _ -> false);
  (* containment: the hypervisor and the other NIC keep working *)
  check bool_c "other NIC unaffected" true (World.transmit w ~nic:1 ~payload);
  World.pump w;
  check bool_c "frames still reach the wire" true (World.wire_tx_frames w >= 1)

(* --- recovery: shadow state restored after restart --- *)

let test_recovery_restores_shadow () =
  let tuning = { Config.default_tuning with Config.recovery = Config.Restart } in
  let w = World.create ~nics:2 ~tuning Config.Xen_twin in
  World.run_set_mtu w ~nic:0 ~mtu:1400;
  World.run_set_rx_mode w ~nic:0 ~promisc:true;
  check int_c "shadow captured mtu" 1400 (World.shadow_mtu w ~nic:0);
  check bool_c "shadow captured promisc" true (World.shadow_promisc w ~nic:0);
  (* scribble the netdev's mtu as a corrupted instance would, then force
     an abort so the supervisor restarts and repairs from shadow *)
  Td_kernel.Netdev.set_mtu (World.netdev w ~nic:0) 9999;
  with_plan wild_only (fun () ->
      check bool_c "restart absorbs the abort" false
        (World.transmit w ~nic:0 ~payload));
  check bool_c "a recovery ran" true (World.recoveries w >= 1);
  check bool_c "all NICs serviceable again" true (World.all_serviceable w);
  check int_c "netdev mtu restored from shadow" 1400
    (Td_kernel.Netdev.mtu (World.netdev w ~nic:0));
  check bool_c "promisc restored via the driver" true
    (World.shadow_promisc w ~nic:0);
  (* the restarted instance still moves packets *)
  check bool_c "transmit works after recovery" true
    (World.transmit w ~nic:0 ~payload);
  World.pump w;
  check bool_c "frame delivered" true (World.wire_tx_frames w >= 1)

let test_replay_policy_delivers () =
  let tuning =
    { Config.default_tuning with Config.recovery = Config.Restart_replay }
  in
  let w = World.create ~nics:1 ~tuning Config.Xen_twin in
  with_plan wild_only (fun () ->
      (* the abort recovers and the frame is replayed on the fresh twin *)
      check bool_c "replayed transmit succeeds" true
        (World.transmit w ~nic:0 ~payload));
  World.pump w;
  check int_c "replayed frame reached the wire" 1 (World.wire_tx_frames w);
  check bool_c "replay counted" true (World.replayed_frames w >= 1);
  check bool_c "recovery counted" true (World.recoveries w >= 1)

(* --- seeded world soak: reproducible end-to-end --- *)

let test_soak_reproducible () =
  let run () =
    let p =
      Experiments.recovery_soak ~frames:300 ~seed:11
        ~policy:Config.Restart_replay ~rate:0.01 ()
    in
    ( p.Experiments.delivered,
      p.Experiments.injected,
      p.Experiments.recoveries,
      p.Experiments.replayed,
      p.Experiments.lost )
  in
  let a = run () and b = run () in
  check bool_c "same seed, same soak outcome" true (a = b);
  let d, i, r, _, _ = a in
  check bool_c "faults were injected" true (i > 0);
  check bool_c "recoveries happened" true (r > 0);
  check bool_c "most frames delivered" true (d > 200)

let test_soak_availability () =
  let p =
    Experiments.recovery_soak ~frames:500 ~seed:5
      ~policy:Config.Restart_replay ~rate:0.004 ()
  in
  check bool_c "availability >= 99%" true (p.Experiments.availability >= 0.99);
  check bool_c "all NICs serviceable at end" true p.Experiments.serviceable;
  check bool_c "recoveries > 0" true (p.Experiments.recoveries > 0)

(* --- execution faults are typed and recoverable --- *)

(* A corrupted function pointer sends the driver to a misaligned code
   address. That must surface as the typed [Interp.Fault] the supervisor
   contains as an abort — not the bare [Invalid_argument] that
   [Program.index_of_addr] raises internally — and after the supervisor
   reloads a fresh image over the dead instance's range, the same warm
   interpreter must execute the replacement, never a stale cached block. *)
let test_misaligned_jump_recovery_cycle () =
  let open Td_misa in
  let m = Harness.make_machine () in
  let base = Td_mem.Layout.vm_driver_code_base in
  let bad =
    let b = Builder.create "drv" in
    Builder.label b "entry";
    Builder.jmp_ind b (Builder.imm (base + 2));
    Builder.finish b
  in
  let good =
    let b = Builder.create "drv" in
    Builder.label b "entry";
    Builder.movl b (Builder.imm 42) (Builder.reg Reg.EAX);
    Builder.ret b;
    Builder.finish b
  in
  let prog =
    Td_rewriter.Loader.load ~name:"drv" ~source:bad ~base
      ~symbols:Td_rewriter.Loader.empty ~registry:m.Harness.registry
  in
  let st = Harness.dom0_cpu m in
  let interp = Harness.interp_of m st in
  let entry = Program.addr_of_label prog "entry" in
  check bool_c "misaligned jump is a typed interpreter fault" true
    (match Td_cpu.Interp.call interp ~entry ~args:[] with
    | exception Td_cpu.Interp.Fault _ -> true
    | exception Invalid_argument _ -> false
    | _ -> false);
  ignore
    (Td_rewriter.Loader.reload ~name:"drv" ~source:good ~base
       ~symbols:Td_rewriter.Loader.empty ~registry:m.Harness.registry);
  check int_c "reloaded image executes on the warm interpreter" 42
    (Td_cpu.Interp.call interp ~entry ~args:[])

(* --- typed guest faults --- *)

let bare_hypervisor () =
  let phys = Td_mem.Phys_mem.create () in
  let xen_space = Td_mem.Addr_space.create ~name:"xen" phys in
  let dom0_space = Td_mem.Addr_space.create ~name:"dom0" phys in
  let cpu = Td_cpu.State.create ~hyp_space:xen_space dom0_space in
  let h =
    Td_xen.Hypervisor.create
      ~ledger:(Td_xen.Ledger.create ())
      ~xen_space ~cpu ()
  in
  (h, dom0_space)

let test_guest_fault_bad_grant () =
  let h, space = bare_hypervisor () in
  let owner =
    Td_xen.Domain.create ~id:9 ~name:"g" ~kind:Td_xen.Domain.Guest ~space
  in
  let gt = Td_xen.Grant_table.create ~owner in
  (* a bad grant reference is a typed, counted fault — not a crash *)
  let before = Td_xen.Guest_fault.total () in
  check bool_c "bad ref typed fault" true
    (match Td_xen.Grant_table.copy_from gt ~hyp:h 999 ~offset:0 ~len:1 with
    | exception Td_xen.Guest_fault.Fault { op = "Grant_table.copy_from"; _ } ->
        true
    | _ -> false);
  check int_c "fault counted" (before + 1) (Td_xen.Guest_fault.total ())

let test_no_domains_names_operation () =
  let h, space = bare_hypervisor () in
  let dom =
    Td_xen.Domain.create ~id:1 ~name:"d" ~kind:Td_xen.Domain.Guest ~space
  in
  (* dom was never added: the typed error must say which operation tripped *)
  check bool_c "error names the operation" true
    (match Td_xen.Hypervisor.run_in h dom (fun () -> ()) with
    | exception Td_xen.Hypervisor.No_domains { op } -> op = "run_in"
    | _ -> false)

let suite =
  [
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "engine counters" `Quick test_engine_counters;
    Alcotest.test_case "zero plan bit-identical" `Quick
      test_zero_plan_bit_identical;
    Alcotest.test_case "wild access contained" `Quick
      test_wild_access_contained;
    Alcotest.test_case "recovery restores shadow" `Quick
      test_recovery_restores_shadow;
    Alcotest.test_case "replay delivers the frame" `Quick
      test_replay_policy_delivers;
    Alcotest.test_case "soak reproducible" `Quick test_soak_reproducible;
    Alcotest.test_case "soak availability" `Quick test_soak_availability;
    Alcotest.test_case "misaligned jump recovery cycle" `Quick
      test_misaligned_jump_recovery_cycle;
    Alcotest.test_case "guest fault: bad grant ref" `Quick
      test_guest_fault_bad_grant;
    Alcotest.test_case "no-domains error names op" `Quick
      test_no_domains_names_operation;
  ]

(* The N-domain registry and the fleet scenarios (docs/FLEET.md):
   a QCheck property over arbitrary create/attach/transmit/destroy
   interleavings asserting frame conservation and the no-dangling
   invariants, a nearest-rank percentile correctness check behind the
   fleet's latency columns, and a small deterministic fleet soak. *)

open Twindrivers

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* --- registry interleavings vs the no-dangling invariants --- *)

(* A scripted interleaving: each int drives one registry op on a world
   booted with one Xen_domU guest on 2 NICs. The model is just the set
   of live slots; after the script the world must agree with it and
   every conservation/no-dangling invariant must hold. *)
let registry_prop =
  QCheck.Test.make ~name:"registry interleavings conserve frames" ~count:30
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 80) (int_range 0 9999))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun script ->
      let tuning = { Config.default_tuning with Config.doorbell = true } in
      let w = World.create ~nics:2 ~tuning Config.Xen_domU in
      let live = ref [ 0 ] in
      let dead = ref [] in
      let tx_ok = ref 0 and injected = ref 0 in
      let pick l n = List.nth l (n mod List.length l) in
      List.iter
        (fun n ->
          match n mod 5 with
          | 0 ->
              if World.guest_slots w < 24 then begin
                let g = World.create_guest ~nic:(n mod 2) w in
                live := g :: !live
              end
          | 1 -> (
              (* destroy a live non-boot guest, if any *)
              match List.filter (fun g -> g <> 0) !live with
              | [] -> ()
              | candidates ->
                  let g = pick candidates n in
                  World.destroy_guest w ~guest:g;
                  live := List.filter (fun g' -> g' <> g) !live;
                  dead := g :: !dead)
          | 2 ->
              let g = pick !live n in
              if World.transmit_from w ~guest:g ~payload:(String.make 200 'f')
              then incr tx_ok
          | 3 ->
              let g = pick !live n in
              World.inject_rx ~guest:g w ~nic:(n mod 2)
                ~payload:(String.make 120 'r');
              incr injected
          | _ ->
              World.pump w;
              World.tick w)
        script;
      World.pump w;
      World.tick w;
      (* conservation: every accepted frame reached the wire (no quota,
         no fault plan in this world), nothing stranded in a channel *)
      let conserved = World.netio_conserved w in
      let wire_ok = World.wire_tx_frames w = !tx_ok in
      let rx_ok = World.delivered_rx_frames w <= !injected in
      (* registry agrees with the model *)
      let count_ok = World.guest_count w = List.length !live in
      let live_ok = List.for_all (fun g -> World.guest_alive w ~guest:g) !live in
      let dead_ok =
        List.for_all (fun g -> not (World.guest_alive w ~guest:g)) !dead
      in
      (* no dangling ledger row: retirement folded every destroyed
         guest's row into "<retired>" and dropped the named row *)
      let rows = List.map fst (Td_xen.Ledger.domain_snapshot (World.ledger w)) in
      let ledger_ok =
        List.for_all
          (fun g -> not (List.mem (Printf.sprintf "guest%d" g) rows))
          !dead
      in
      (* no dangling doorbell mapping: exactly one page per open channel
         (the boot guest holds one channel per NIC, later guests one) *)
      let open_channels = World.nic_count w + (List.length !live - 1) in
      let doorbell_ok = World.doorbell_pages_mapped w = open_channels in
      (* a destroyed guest's frontend faults typed, never crashes *)
      let stale_ok =
        match !dead with
        | [] -> true
        | g :: _ -> (
            match World.transmit_from w ~guest:g ~payload:"stale" with
            | (_ : bool) -> false
            | exception Td_xen.Guest_fault.Fault _ -> true)
      in
      World.shutdown w;
      let drained = World.staged_frames w = 0 in
      conserved && wire_ok && rx_ok && count_ok && live_ok && dead_ok
      && ledger_ok && doorbell_ok && stale_ok && drained)

(* --- nearest-rank percentiles, checked by hand --- *)

let test_percentile_correctness () =
  let l = Td_xen.Ledger.create () in
  check bool_c "no samples -> None" true
    (Td_xen.Ledger.latency_percentile l `Tx 50. = None);
  (* 10 known samples, recorded out of order *)
  List.iter
    (Td_xen.Ledger.note_latency l `Tx)
    [ 70; 10; 100; 40; 90; 20; 80; 50; 30; 60 ];
  let p d = Td_xen.Ledger.latency_percentile l d in
  let get = function Some v -> int_of_float v | None -> -1 in
  check int_c "10 samples" 10 (Td_xen.Ledger.latency_count l `Tx);
  (* nearest rank: index = ceil(p/100 * n) - 1 over the sorted samples *)
  check int_c "p50 = 5th of 10" 50 (get (p `Tx 50.));
  check int_c "p90 = 9th of 10" 90 (get (p `Tx 90.));
  check int_c "p99 = 10th of 10" 100 (get (p `Tx 99.));
  check int_c "p99.9 = 10th of 10" 100 (get (p `Tx 99.9));
  check int_c "p100 clamps to max" 100 (get (p `Tx 100.));
  check int_c "p0 clamps to min" 10 (get (p `Tx 0.));
  (* directions are independent *)
  check bool_c "rx untouched" true (p `Rx 50. = None);
  (* 1000 samples 1..1000, recorded in a scrambled order *)
  let l2 = Td_xen.Ledger.create () in
  for i = 0 to 999 do
    Td_xen.Ledger.note_latency l2 `Rx (1 + ((i * 617) mod 1000))
  done;
  let p2 q = get (Td_xen.Ledger.latency_percentile l2 `Rx q) in
  check int_c "p50 of 1..1000" 500 (p2 50.);
  check int_c "p99 of 1..1000" 990 (p2 99.);
  check int_c "p99.9 of 1..1000" 999 (p2 99.9)

(* --- a small fleet soak: deterministic, conserved, available --- *)

let test_fleet_smoke () =
  let r =
    Experiments.fleet ~domains:24 ~frames:6000 ~nics:2 ~seed:5 ~churn:6
      ~quota:true ~fault_rate:0. ~runs:2 ()
  in
  check int_c "fleet size" 24 r.Experiments.fl_domains;
  check bool_c "frames offered" true (r.Experiments.fl_offered_tx > 0);
  check bool_c "rx injected" true (r.Experiments.fl_rx_injected > 0);
  check bool_c "some churn happened" true (r.Experiments.fl_churned > 0);
  check bool_c "availability >= 0.99" true (r.Experiments.fl_availability >= 0.99);
  check bool_c "conserved" true r.Experiments.fl_conserved;
  check int_c "nothing staged after shutdown" 0
    r.Experiments.fl_staged_after_shutdown;
  check int_c "no dangling doorbells" 0 r.Experiments.fl_dangling_doorbells;
  check bool_c "two runs bit-identical" true r.Experiments.fl_deterministic;
  check bool_c "percentiles populated" true (r.Experiments.fl_tx_p50 > 0.)

let test_fleet_faulty_smoke () =
  (* with the fault plan armed the soak still conserves, recovers and
     replays deterministically *)
  let r =
    Experiments.fleet ~domains:12 ~frames:4000 ~nics:2 ~seed:9 ~churn:4
      ~quota:true ~fault_rate:1e-3 ~runs:2 ()
  in
  check bool_c "faults fired" true (r.Experiments.fl_injected > 0);
  check bool_c "conserved under faults" true r.Experiments.fl_conserved;
  check bool_c "deterministic under faults" true r.Experiments.fl_deterministic;
  check int_c "no dangling doorbells under faults" 0
    r.Experiments.fl_dangling_doorbells

let test_fleet_rejects_oversize () =
  match Experiments.fleet ~domains:300 ~frames:10 () with
  | (_ : Experiments.fleet_report) ->
      Alcotest.fail "fleet accepted 300 domains"
  | exception Invalid_argument _ -> ()

let suite =
  [
    QCheck_alcotest.to_alcotest registry_prop;
    Alcotest.test_case "nearest-rank percentiles" `Quick
      test_percentile_correctness;
    Alcotest.test_case "fleet smoke: deterministic and conserved" `Quick
      test_fleet_smoke;
    Alcotest.test_case "fleet smoke under faults" `Quick
      test_fleet_faulty_smoke;
    Alcotest.test_case "fleet rejects > 256 domains" `Quick
      test_fleet_rejects_oversize;
  ]

(* Tests for the hypervisor substrate: ledger, domains, world switches,
   virtual interrupts, grant tables, upcalls. *)

open Td_xen

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

let make_xen () =
  let m = Harness.make_machine () in
  let ledger = Ledger.create () in
  let cpu = Harness.dom0_cpu m in
  let hyp = Hypervisor.create ~ledger ~xen_space:m.Harness.hyp ~cpu () in
  let dom0 =
    Domain.create ~id:0 ~name:"dom0" ~kind:Domain.Driver_domain
      ~space:m.Harness.dom0
  in
  let gspace = Td_mem.Addr_space.create ~name:"guest" m.Harness.phys in
  Td_mem.Addr_space.heap_init gspace ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let guest = Domain.create ~id:1 ~name:"guest" ~kind:Domain.Guest ~space:gspace in
  Hypervisor.add_domain hyp dom0;
  Hypervisor.add_domain hyp guest;
  let vif = Td_mem.Addr_space.heap_alloc m.Harness.dom0 4 in
  Domain.init_vif dom0 ~vaddr:vif;
  (m, hyp, dom0, guest)

let test_ledger () =
  let l = Ledger.create () in
  Ledger.charge l Ledger.Dom0 100;
  Ledger.charge l Ledger.Xen 50;
  Ledger.charge l Ledger.Xen 25;
  check int_c "dom0" 100 (Ledger.total l Ledger.Dom0);
  check int_c "xen" 75 (Ledger.total l Ledger.Xen);
  check int_c "grand" 175 (Ledger.grand_total l);
  let per = Ledger.per_packet l ~packets:25 in
  check bool_c "per packet" true (List.assoc Ledger.Xen per = 3.0);
  Ledger.reset l;
  check int_c "reset" 0 (Ledger.grand_total l)

let test_switch_charges_and_flushes () =
  let _, hyp, dom0, guest = make_xen () in
  check bool_c "initial domain is dom0" true
    (Domain.id (Hypervisor.current hyp) = Domain.id dom0);
  let before = Ledger.total (Hypervisor.ledger hyp) Ledger.Xen in
  Hypervisor.switch_to hyp guest;
  check bool_c "charged" true
    (Ledger.total (Hypervisor.ledger hyp) Ledger.Xen > before);
  check int_c "switch count" 1 (Hypervisor.switches hyp);
  (* switching to the current domain is free *)
  Hypervisor.switch_to hyp guest;
  check int_c "no-op switch" 1 (Hypervisor.switches hyp)

let test_run_in_restores () =
  let _, hyp, dom0, guest = make_xen () in
  Hypervisor.switch_to hyp guest;
  let seen = ref None in
  Hypervisor.run_in hyp dom0 (fun () ->
      seen := Some (Domain.name (Hypervisor.current hyp)));
  check bool_c "ran in dom0" true (!seen = Some "dom0");
  check bool_c "restored to guest" true
    (Domain.id (Hypervisor.current hyp) = Domain.id guest);
  (* exceptions restore too *)
  (try
     Hypervisor.run_in hyp dom0 (fun () -> failwith "boom")
   with Failure _ -> ());
  check bool_c "restored after exception" true
    (Domain.id (Hypervisor.current hyp) = Domain.id guest)

let test_virq_masking () =
  let _, hyp, dom0, _ = make_xen () in
  let fired = ref 0 in
  Domain.mask_interrupts dom0;
  Hypervisor.send_virq hyp dom0 (fun () -> incr fired);
  check int_c "deferred while masked" 0 !fired;
  check int_c "pending" 1 (Domain.pending dom0);
  Domain.unmask_interrupts dom0;
  check int_c "fired on unmask" 1 !fired;
  Hypervisor.send_virq hyp dom0 (fun () -> incr fired);
  check int_c "fires immediately when unmasked" 2 !fired

let test_vif_is_shared_memory () =
  (* the virtual interrupt flag is a word in dom0 memory: driver code can
     flip it directly, as §4.4 requires *)
  let m, _, dom0, _ = make_xen () in
  check bool_c "unmasked initially" false (Domain.interrupts_masked dom0);
  Td_mem.Addr_space.write m.Harness.dom0 (Domain.vif_addr dom0)
    Td_misa.Width.W32 1;
  check bool_c "masked via raw memory write" true
    (Domain.interrupts_masked dom0)

let test_grant_map_copy () =
  let m, hyp, dom0, guest = make_xen () in
  let gt = Grant_table.create ~owner:guest in
  let gpage = Td_mem.Addr_space.heap_alloc (Domain.space guest) 4096 in
  Td_mem.Addr_space.write (Domain.space guest) gpage Td_misa.Width.W32 0xFEED;
  let frame =
    Option.get
      (Td_mem.Addr_space.frame_of_vpage (Domain.space guest)
         ~vpage:(Td_mem.Layout.page_of gpage))
  in
  let r = Grant_table.grant gt ~frame in
  (* dom0 maps the granted frame and sees the guest's data *)
  let at_vpage = 0xC7F10 in
  Grant_table.map gt ~hyp ~into:dom0 ~at_vpage r;
  check int_c "shared via grant" 0xFEED
    (Td_mem.Addr_space.read m.Harness.dom0 (at_vpage * 4096) Td_misa.Width.W32);
  (* a second grant exercises gnttab_copy while the first stays mapped *)
  let r2 = Grant_table.grant gt ~frame in
  let before = Ledger.total (Hypervisor.ledger hyp) Ledger.Xen in
  Grant_table.copy_to gt ~hyp r2 ~offset:100 ~src:(Bytes.of_string "hello");
  check bool_c "copy charged" true
    (Ledger.total (Hypervisor.ledger hyp) Ledger.Xen > before);
  let back = Grant_table.copy_from gt ~hyp r2 ~offset:100 ~len:5 in
  check bool_c "copy roundtrip" true (Bytes.to_string back = "hello");
  Grant_table.revoke gt r2;
  (* forced revocation: the guest takes its page back even while dom0
     still has it mapped — the stale window vpage is poisoned, so the
     LATER ACCESSOR faults deterministically instead of aliasing *)
  Grant_table.revoke gt r;
  check int_c "no active grants" 0 (Grant_table.active gt);
  check bool_c "stale access through revoked mapping faults" true
    (match
       Td_mem.Addr_space.read m.Harness.dom0 (at_vpage * 4096)
         Td_misa.Width.W32
     with
    | exception Guest_fault.Fault { op = "Grant_table.access_revoked"; _ } ->
        true
    | _ -> false);
  check bool_c "stale unmap after revoke faults as revoked" true
    (match Grant_table.unmap gt ~hyp ~from:dom0 ~at_vpage r with
    | exception Guest_fault.Fault { op = "Grant_table.unmap"; reason } ->
        String.length reason > 0
        && String.sub reason 0 7 = "revoked"
    | _ -> false)

(* Cross-domain isolation probe: mapping one guest's grant must never make
   another guest's frames reachable, a guest-chosen vpage must never
   clobber an existing mapping, and an arbitrary vpage must never unmap
   someone else's page. *)
let test_grant_isolation () =
  let m, hyp, dom0, guest = make_xen () in
  let other_space = Td_mem.Addr_space.create ~name:"other" m.Harness.phys in
  Td_mem.Addr_space.heap_init other_space ~base:Td_mem.Layout.guest_heap_base
    ~limit:Td_mem.Layout.guest_heap_limit;
  let other_page = Td_mem.Addr_space.heap_alloc other_space 4096 in
  let other_frame =
    Option.get
      (Td_mem.Addr_space.frame_of_vpage other_space
         ~vpage:(Td_mem.Layout.page_of other_page))
  in
  let gt = Grant_table.create ~owner:guest in
  let gpage = Td_mem.Addr_space.heap_alloc (Domain.space guest) 4096 in
  let gframe =
    Option.get
      (Td_mem.Addr_space.frame_of_vpage (Domain.space guest)
         ~vpage:(Td_mem.Layout.page_of gpage))
  in
  let r = Grant_table.grant gt ~frame:gframe in
  let at_vpage = 0xC7F20 in
  Grant_table.map gt ~hyp ~into:dom0 ~at_vpage r;
  (* the mapping resolves to the granter's frame, nobody else's *)
  check bool_c "mapped frame is the granter's" true
    (Td_mem.Addr_space.frame_of_vpage m.Harness.dom0 ~vpage:at_vpage
    = Some gframe);
  check bool_c "mapped frame is not the other guest's" true
    (Td_mem.Addr_space.frame_of_vpage m.Harness.dom0 ~vpage:at_vpage
    <> Some other_frame);
  (* a second grant aimed at the same (occupied) vpage is refused *)
  let r2 = Grant_table.grant gt ~frame:gframe in
  check bool_c "map over occupied vpage refused" true
    (match Grant_table.map gt ~hyp ~into:dom0 ~at_vpage r2 with
    | exception Guest_fault.Fault _ -> true
    | _ -> false);
  (* unmap with a guest-chosen wrong vpage is refused *)
  check bool_c "unmap at wrong vpage refused" true
    (match
       Grant_table.unmap gt ~hyp ~from:dom0 ~at_vpage:(at_vpage + 1) r
     with
    | exception Guest_fault.Fault _ -> true
    | _ -> false);
  (* the refusals left the real mapping intact *)
  check bool_c "mapping survived the attacks" true
    (Td_mem.Addr_space.frame_of_vpage m.Harness.dom0 ~vpage:at_vpage
    = Some gframe);
  Grant_table.unmap gt ~hyp ~from:dom0 ~at_vpage r

let test_upcall_mechanism () =
  let _, hyp, dom0, guest = make_xen () in
  Hypervisor.switch_to hyp guest;
  let stats = Upcall.fresh_stats () in
  let ran_in = ref "" in
  let impl _st = ran_in := Domain.name (Hypervisor.current hyp) in
  let stub = Upcall.make_stub ~hyp ~dom0 ~name:"kmalloc" ~impl stats in
  let switches_before = Hypervisor.switches hyp in
  stub (Hypervisor.cpu hyp);
  check bool_c "support routine ran in dom0" true (!ran_in = "dom0");
  check bool_c "returned to guest" true
    (Domain.id (Hypervisor.current hyp) = Domain.id guest);
  check int_c "one invocation" 1 stats.Upcall.invocations;
  check int_c "two world switches" 2
    (Hypervisor.switches hyp - switches_before);
  (* an upcall from dom0 context needs no switch *)
  Hypervisor.switch_to hyp dom0;
  let sw = Hypervisor.switches hyp in
  stub (Hypervisor.cpu hyp);
  check int_c "no switch from dom0" 0 (Hypervisor.switches hyp - sw)

let test_scheduler_fairness () =
  let m = Harness.make_machine () in
  ignore m;
  let mk i =
    Domain.create ~id:i ~name:(Printf.sprintf "g%d" i) ~kind:Domain.Guest
      ~space:m.Harness.dom0
  in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  let sc = Scheduler.create ~initial_credit:2 () in
  Scheduler.add sc a;
  Scheduler.add sc b;
  Scheduler.add sc c;
  (* all runnable: picks rotate fairly as credits burn *)
  for _ = 1 to 9 do
    ignore (Scheduler.pick sc ~runnable:(fun _ -> true))
  done;
  check int_c "a slices" 3 (Scheduler.slices sc a);
  check int_c "b slices" 3 (Scheduler.slices sc b);
  check int_c "c slices" 3 (Scheduler.slices sc c);
  (* only b runnable: b monopolises, credits refill as needed *)
  for _ = 1 to 5 do
    ignore (Scheduler.pick sc ~runnable:(fun d -> Domain.id d = 2))
  done;
  check int_c "b monopolises when alone" 8 (Scheduler.slices sc b);
  check bool_c "nothing runnable -> None" true
    (Scheduler.pick sc ~runnable:(fun _ -> false) = None)

let test_event_queue () =
  let q = Td_sim.Event_queue.create () in
  let log = ref [] in
  Td_sim.Event_queue.schedule q ~at:3.0 (fun () -> log := 3 :: !log);
  Td_sim.Event_queue.schedule q ~at:1.0 (fun () -> log := 1 :: !log);
  Td_sim.Event_queue.schedule q ~at:2.0 (fun () ->
      log := 2 :: !log;
      (* events may schedule events *)
      Td_sim.Event_queue.schedule_after q ~delay:0.5 (fun () -> log := 25 :: !log));
  Td_sim.Event_queue.run q;
  check bool_c "time order" true (List.rev !log = [ 1; 2; 25; 3 ]);
  check int_c "drained" 0 (Td_sim.Event_queue.pending q)

let test_event_queue_horizon () =
  let q = Td_sim.Event_queue.create () in
  let n = ref 0 in
  Td_sim.Event_queue.schedule q ~at:1.0 (fun () -> incr n);
  Td_sim.Event_queue.schedule q ~at:5.0 (fun () -> incr n);
  Td_sim.Event_queue.run_until q 2.0;
  check int_c "only first fired" 1 !n;
  check int_c "one pending" 1 (Td_sim.Event_queue.pending q)

let suite =
  [
    Alcotest.test_case "ledger" `Quick test_ledger;
    Alcotest.test_case "switch charges/flushes" `Quick
      test_switch_charges_and_flushes;
    Alcotest.test_case "run_in restores" `Quick test_run_in_restores;
    Alcotest.test_case "virq masking" `Quick test_virq_masking;
    Alcotest.test_case "vif shared memory" `Quick test_vif_is_shared_memory;
    Alcotest.test_case "grant map/copy" `Quick test_grant_map_copy;
    Alcotest.test_case "grant isolation" `Quick test_grant_isolation;
    Alcotest.test_case "upcall mechanism" `Quick test_upcall_mechanism;
    Alcotest.test_case "scheduler fairness" `Quick test_scheduler_fairness;
    Alcotest.test_case "event queue order" `Quick test_event_queue;
    Alcotest.test_case "event queue horizon" `Quick test_event_queue_horizon;
  ]
